#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace perfiso {
namespace {

TEST(LatencyRecorderTest, EmptyReturnsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Count(), 0u);
  EXPECT_EQ(rec.P99(), 0);
  EXPECT_EQ(rec.Mean(), 0);
}

TEST(LatencyRecorderTest, ExactPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Add(i);
  }
  EXPECT_EQ(rec.P50(), 50);
  EXPECT_EQ(rec.P95(), 95);
  EXPECT_EQ(rec.P99(), 99);
  EXPECT_EQ(rec.Percentile(100), 100);
  EXPECT_EQ(rec.Percentile(0), 1);
  EXPECT_EQ(rec.Min(), 1);
  EXPECT_EQ(rec.Max(), 100);
  EXPECT_NEAR(rec.Mean(), 50.5, 1e-9);
}

TEST(LatencyRecorderTest, UnsortedInput) {
  LatencyRecorder rec;
  rec.Add(9);
  rec.Add(1);
  rec.Add(5);
  EXPECT_EQ(rec.P50(), 5);
  EXPECT_EQ(rec.Max(), 9);
}

TEST(LatencyRecorderTest, InterleavedAddAndQuery) {
  LatencyRecorder rec;
  rec.Add(10);
  EXPECT_EQ(rec.P99(), 10);
  rec.Add(20);
  EXPECT_EQ(rec.P99(), 20);  // cache must invalidate on Add
  rec.Clear();
  EXPECT_EQ(rec.Count(), 0u);
}

TEST(LatencyRecorderTest, MergeAppendsInOrderAndPreservesDigestSemantics) {
  LatencyRecorder a;
  a.Add(1);
  a.Add(2);
  LatencyRecorder b;
  b.Add(3);
  b.Add(4);

  LatencyRecorder combined;  // one recorder that saw A's samples then B's
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    combined.Add(x);
  }

  a.Merge(b);
  EXPECT_EQ(a.Count(), 4u);
  EXPECT_EQ(a.samples(), combined.samples());
  EXPECT_EQ(a.Digest(), combined.Digest());
  EXPECT_NEAR(a.Mean(), 2.5, 1e-12);
  EXPECT_EQ(a.Max(), 4);
  // The source is untouched.
  EXPECT_EQ(b.Count(), 2u);
}

TEST(LatencyRecorderTest, MergeEmptyIsIdentity) {
  LatencyRecorder a;
  a.Add(7);
  const uint64_t digest = a.Digest();
  LatencyRecorder empty;
  a.Merge(empty);
  EXPECT_EQ(a.Digest(), digest);
  empty.Merge(a);
  EXPECT_EQ(empty.Digest(), digest);
}

TEST(LatencyRecorderTest, MergeInvalidatesPercentileCache) {
  LatencyRecorder a;
  a.Add(10);
  EXPECT_EQ(a.P99(), 10);  // forces the sorted cache
  LatencyRecorder b;
  b.Add(20);
  a.Merge(b);
  EXPECT_EQ(a.P99(), 20);
}

TEST(SnapshotHistogramTest, CountsAndSummaryMatchRecorder) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Add(i);
  }
  const HistogramSnapshot snap = SnapshotHistogram(rec, 0, 100, 10);
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 100);
  EXPECT_NEAR(snap.mean, 50.5, 1e-9);
  EXPECT_EQ(snap.p50, rec.P50());
  EXPECT_EQ(snap.p99, rec.P99());
  ASSERT_EQ(snap.bucket_counts.size(), 10u);
  uint64_t total = 0;
  for (uint64_t c : snap.bucket_counts) {
    total += c;
  }
  EXPECT_EQ(total, 100u);
  // Samples 1..9 land in [0,10); sample 100 clamps into the last bucket.
  EXPECT_EQ(snap.bucket_counts[0], 9u);
  EXPECT_EQ(snap.bucket_counts[9], 11u);
}

TEST(SnapshotHistogramTest, EmptyRecorder) {
  LatencyRecorder rec;
  const HistogramSnapshot snap = SnapshotHistogram(rec, 0, 10, 4);
  EXPECT_EQ(snap.count, 0u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  for (uint64_t c : snap.bucket_counts) {
    EXPECT_EQ(c, 0u);
  }
}

TEST(MovingAverageTest, WindowEviction) {
  MovingAverage ma(3);
  ma.Add(3);
  EXPECT_EQ(ma.Value(), 3);
  ma.Add(6);
  ma.Add(9);
  EXPECT_EQ(ma.Value(), 6);
  ma.Add(12);  // evicts 3
  EXPECT_EQ(ma.Value(), 9);
  EXPECT_TRUE(ma.Full());
}

TEST(MeanVarTest, KnownValues) {
  MeanVar mv;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    mv.Add(x);
  }
  EXPECT_NEAR(mv.Mean(), 5.0, 1e-9);
  EXPECT_NEAR(mv.Variance(), 32.0 / 7.0, 1e-9);  // sample variance
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0, 10, 10);
  h.Add(-5);   // clamps to first bucket
  h.Add(0.5);
  h.Add(9.5);
  h.Add(100);  // clamps to last bucket
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(9), 2u);
}

TEST(HistogramTest, ApproxPercentileWithinBucketWidth) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 1000; ++i) {
    h.Add(i % 100);
  }
  EXPECT_NEAR(h.ApproxPercentile(50), 50, 2);
  EXPECT_NEAR(h.ApproxPercentile(99), 99, 2);
}

}  // namespace
}  // namespace perfiso
