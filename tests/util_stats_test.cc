#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace perfiso {
namespace {

TEST(LatencyRecorderTest, EmptyReturnsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Count(), 0u);
  EXPECT_EQ(rec.P99(), 0);
  EXPECT_EQ(rec.Mean(), 0);
}

TEST(LatencyRecorderTest, ExactPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Add(i);
  }
  EXPECT_EQ(rec.P50(), 50);
  EXPECT_EQ(rec.P95(), 95);
  EXPECT_EQ(rec.P99(), 99);
  EXPECT_EQ(rec.Percentile(100), 100);
  EXPECT_EQ(rec.Percentile(0), 1);
  EXPECT_EQ(rec.Min(), 1);
  EXPECT_EQ(rec.Max(), 100);
  EXPECT_NEAR(rec.Mean(), 50.5, 1e-9);
}

TEST(LatencyRecorderTest, UnsortedInput) {
  LatencyRecorder rec;
  rec.Add(9);
  rec.Add(1);
  rec.Add(5);
  EXPECT_EQ(rec.P50(), 5);
  EXPECT_EQ(rec.Max(), 9);
}

TEST(LatencyRecorderTest, InterleavedAddAndQuery) {
  LatencyRecorder rec;
  rec.Add(10);
  EXPECT_EQ(rec.P99(), 10);
  rec.Add(20);
  EXPECT_EQ(rec.P99(), 20);  // cache must invalidate on Add
  rec.Clear();
  EXPECT_EQ(rec.Count(), 0u);
}

TEST(MovingAverageTest, WindowEviction) {
  MovingAverage ma(3);
  ma.Add(3);
  EXPECT_EQ(ma.Value(), 3);
  ma.Add(6);
  ma.Add(9);
  EXPECT_EQ(ma.Value(), 6);
  ma.Add(12);  // evicts 3
  EXPECT_EQ(ma.Value(), 9);
  EXPECT_TRUE(ma.Full());
}

TEST(MeanVarTest, KnownValues) {
  MeanVar mv;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    mv.Add(x);
  }
  EXPECT_NEAR(mv.Mean(), 5.0, 1e-9);
  EXPECT_NEAR(mv.Variance(), 32.0 / 7.0, 1e-9);  // sample variance
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0, 10, 10);
  h.Add(-5);   // clamps to first bucket
  h.Add(0.5);
  h.Add(9.5);
  h.Add(100);  // clamps to last bucket
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(9), 2u);
}

TEST(HistogramTest, ApproxPercentileWithinBucketWidth) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 1000; ++i) {
    h.Add(i % 100);
  }
  EXPECT_NEAR(h.ApproxPercentile(50), 50, 2);
  EXPECT_NEAR(h.ApproxPercentile(99), 99, 2);
}

}  // namespace
}  // namespace perfiso
