// Property sweeps over the IndexServe model: conservation of queries, load
// monotonicity, and scaling behaviour that any queueing system must satisfy.
#include <gtest/gtest.h>

#include "src/cluster/index_node.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

struct SweepResult {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t dropped = 0;
  double p50 = 0;
  double p99 = 0;
  double primary_util = 0;
};

SweepResult RunAtQps(double qps, uint64_t seed, SimDuration measure = 2 * kSecond) {
  Simulator sim;
  IndexNodeOptions options;
  options.seed = 7;
  IndexNodeRig rig(&sim, options, "m0");
  Rng trace_rng(seed);
  auto trace = GenerateTrace(TraceSpec{}, 8000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), qps, Rng(seed + 1),
                        [&](const QueryWork& work, SimTime) { rig.server().SubmitQuery(work); });
  const auto snap = rig.SnapshotUtilization();
  client.Run(0, measure);
  // Drain fully: no new arrivals, everything in flight completes or drops.
  sim.RunUntil(measure + 2 * kSecond);
  SweepResult result;
  result.submitted = rig.server().stats().submitted;
  result.completed = rig.server().stats().completed;
  result.dropped = rig.server().stats().TotalDropped();
  result.p50 = rig.server().stats().latency_ms.P50();
  result.p99 = rig.server().stats().latency_ms.P99();
  result.primary_util = rig.UtilizationSince(snap, TenantClass::kPrimary);
  return result;
}

class QpsSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(QpsSweepTest, EveryQueryAccountedFor) {
  const SweepResult r = RunAtQps(GetParam(), 11);
  EXPECT_GT(r.submitted, 0);
  // Conservation: submitted == completed + dropped once drained.
  EXPECT_EQ(r.submitted, r.completed + r.dropped);
}

TEST_P(QpsSweepTest, NoDropsBelowSaturation) {
  const SweepResult r = RunAtQps(GetParam(), 13);
  EXPECT_EQ(r.dropped, 0) << "dropped at " << GetParam() << " qps";
}

INSTANTIATE_TEST_SUITE_P(Loads, QpsSweepTest,
                         ::testing::Values(250.0, 1000.0, 2000.0, 3000.0, 4000.0));

TEST(IndexServePropertyTest, UtilizationScalesLinearlyWithLoad) {
  const SweepResult low = RunAtQps(1000, 17);
  const SweepResult high = RunAtQps(4000, 17);
  // Same per-query work -> utilization ratio tracks the load ratio.
  EXPECT_NEAR(high.primary_util / low.primary_util, 4.0, 0.4);
}

TEST(IndexServePropertyTest, TailGrowsWithLoadButMedianStable) {
  const SweepResult low = RunAtQps(500, 19);
  const SweepResult high = RunAtQps(4000, 19);
  // Below saturation the median barely moves...
  EXPECT_NEAR(high.p50, low.p50, 0.8);
  // ...and the tail may only grow.
  EXPECT_GE(high.p99, low.p99 - 0.5);
}

TEST(IndexServePropertyTest, OverloadIsShedNotQueuedForever) {
  // 4x the machine's capacity: admission control + expiry must shed load and
  // the server must still drain when arrivals stop.
  const SweepResult r = RunAtQps(16000, 23, kSecond);
  EXPECT_GT(r.dropped, 0);
  EXPECT_EQ(r.submitted, r.completed + r.dropped);
  // Completed queries still finished within the client timeout.
  EXPECT_LE(r.p99, 450.0);
}

TEST(IndexServePropertyTest, BiggerQueriesTakeLonger) {
  // Direct property of the model: latency increases with size_factor.
  Simulator sim;
  IndexNodeOptions options;
  IndexNodeRig rig(&sim, options, "m0");
  double latency_small = 0;
  double latency_large = 0;
  QueryWork work;
  work.fanout = 6;
  work.seed = 99;
  work.size_factor = 0.5;
  rig.server().SubmitQuery(work, [&](const QueryResult& r) { latency_small = r.latency_ms; });
  sim.RunUntil(kSecond);
  work.size_factor = 3.0;
  rig.server().SubmitQuery(work, [&](const QueryResult& r) { latency_large = r.latency_ms; });
  sim.RunUntil(2 * kSecond);
  EXPECT_GT(latency_large, latency_small * 1.5);
}

TEST(IndexServePropertyTest, SsdTrafficMatchesMissRate) {
  Simulator sim;
  IndexNodeOptions options;
  options.indexserve.hedging_enabled = false;
  IndexNodeRig rig(&sim, options, "m0");
  Rng trace_rng(31);
  auto trace = GenerateTrace(TraceSpec{}, 2000, &trace_rng);
  int64_t fanout_total = 0;
  SimTime at = 0;
  for (const auto& q : trace) {
    fanout_total += q.fanout;
    // Staggered submission keeps arrivals under the admission cap.
    sim.Schedule(at, [&rig, q] { rig.server().SubmitQuery(q); });
    at += FromMillis(1);
  }
  sim.RunUntil(at + 20 * kSecond);
  const auto& stats = rig.ssd_scheduler().Stats(kIoOwnerIndexData);
  // chunk reads ~= miss_rate * chunks, plus snippet_reads per query.
  const double expected = 0.5 * static_cast<double>(fanout_total) +
                          3.0 * static_cast<double>(trace.size());
  EXPECT_NEAR(static_cast<double>(stats.completed), expected, expected * 0.06);
}

}  // namespace
}  // namespace perfiso
