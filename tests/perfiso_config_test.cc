#include "src/perfiso/perfiso_config.h"

#include <gtest/gtest.h>

namespace perfiso {
namespace {

TEST(PerfIsoConfigTest, RoundTripsThroughConfigMap) {
  PerfIsoConfig config;
  config.enabled = false;
  config.cpu_mode = CpuIsolationMode::kStaticCores;
  config.blind.buffer_cores = 6;
  config.blind.proportional_step = false;
  config.blind.placement = CorePlacement::kSpread;
  config.blind.initial_secondary_cores = 12;
  config.blind.update_on_every_poll = true;
  config.static_secondary_cores = 20;
  config.cpu_rate_cap = 0.33;
  config.poll_interval = FromMicros(750);
  config.min_free_memory_bytes = 123456789;
  config.memory_check_every_n_polls = 7;
  config.egress_rate_cap_bps = 5e8;
  config.net.link_rate_bps = 25e9 / 8;  // a 25 GbE fleet
  config.net.uplink_oversubscription = 3.0;
  config.net.machines_per_rack = 24;
  config.net.base_latency = FromMicros(80);
  config.net.chunk_bytes = 16 * 1024;
  config.net.tx_priority = false;
  config.io_window_polls = 9;
  config.io_poll_interval = FromMillis(55);
  config.io_limits.push_back(IoOwnerLimit{901, 60e6, 0, 1, 2.0, 100});
  config.io_limits.push_back(IoOwnerLimit{900, 100e6, 20, 2, 1.0, 0});

  auto parsed = PerfIsoConfig::FromConfigMap(config.ToConfigMap());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const PerfIsoConfig& back = *parsed;
  EXPECT_EQ(back.enabled, config.enabled);
  EXPECT_EQ(back.cpu_mode, config.cpu_mode);
  EXPECT_EQ(back.blind.buffer_cores, config.blind.buffer_cores);
  EXPECT_EQ(back.blind.proportional_step, config.blind.proportional_step);
  EXPECT_EQ(back.blind.placement, config.blind.placement);
  EXPECT_EQ(back.blind.initial_secondary_cores, config.blind.initial_secondary_cores);
  EXPECT_EQ(back.blind.update_on_every_poll, config.blind.update_on_every_poll);
  EXPECT_EQ(back.static_secondary_cores, config.static_secondary_cores);
  EXPECT_DOUBLE_EQ(back.cpu_rate_cap, config.cpu_rate_cap);
  EXPECT_EQ(back.poll_interval, config.poll_interval);
  EXPECT_EQ(back.min_free_memory_bytes, config.min_free_memory_bytes);
  EXPECT_EQ(back.memory_check_every_n_polls, config.memory_check_every_n_polls);
  EXPECT_DOUBLE_EQ(back.egress_rate_cap_bps, config.egress_rate_cap_bps);
  EXPECT_DOUBLE_EQ(back.net.link_rate_bps, config.net.link_rate_bps);
  EXPECT_DOUBLE_EQ(back.net.uplink_oversubscription, config.net.uplink_oversubscription);
  EXPECT_EQ(back.net.machines_per_rack, config.net.machines_per_rack);
  EXPECT_EQ(back.net.base_latency, config.net.base_latency);
  EXPECT_EQ(back.net.chunk_bytes, config.net.chunk_bytes);
  EXPECT_EQ(back.net.tx_priority, config.net.tx_priority);
  EXPECT_EQ(back.io_window_polls, config.io_window_polls);
  EXPECT_EQ(back.io_poll_interval, config.io_poll_interval);
  ASSERT_EQ(back.io_limits.size(), 2u);
  // io_limits come back sorted by owner id.
  EXPECT_EQ(back.io_limits[0].owner, 900);
  EXPECT_DOUBLE_EQ(back.io_limits[0].iops, 20);
  EXPECT_EQ(back.io_limits[1].owner, 901);
  EXPECT_DOUBLE_EQ(back.io_limits[1].bandwidth_bps, 60e6);
  EXPECT_DOUBLE_EQ(back.io_limits[1].min_iops_guarantee, 100);
}

TEST(PerfIsoConfigTest, DefaultsFromEmptyMap) {
  auto config = PerfIsoConfig::FromConfigMap(ConfigMap());
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->enabled);
  EXPECT_EQ(config->cpu_mode, CpuIsolationMode::kBlindIsolation);
  EXPECT_EQ(config->blind.buffer_cores, 8);  // the paper's value for IndexServe
}

TEST(PerfIsoConfigTest, BadModeRejected) {
  ConfigMap map;
  map.SetString("cpu.mode", "turbo");
  EXPECT_FALSE(PerfIsoConfig::FromConfigMap(map).ok());
}

TEST(PerfIsoConfigTest, BadPlacementRejected) {
  ConfigMap map;
  map.SetString("cpu.placement", "diagonal");
  EXPECT_FALSE(PerfIsoConfig::FromConfigMap(map).ok());
}

TEST(PerfIsoConfigTest, StrictParseRejectsUnknownKeys) {
  // The permissive parser ignores keys it does not understand...
  ConfigMap map;
  map.SetInt("cpu.buffer_cores", 6);
  map.SetInt("cpu.bufer_cores", 12);  // typo
  auto permissive = PerfIsoConfig::FromConfigMap(map);
  ASSERT_TRUE(permissive.ok());
  EXPECT_EQ(permissive->blind.buffer_cores, 6);

  // ...while the strict parser used by authoring surfaces fails loudly.
  EXPECT_FALSE(PerfIsoConfig::FromConfigMapStrict(map).ok());
  ConfigMap clean;
  clean.SetInt("cpu.buffer_cores", 6);
  auto strict = PerfIsoConfig::FromConfigMapStrict(clean);
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_EQ(strict->blind.buffer_cores, 6);
}

TEST(PerfIsoConfigTest, MalformedIoOwnerIdIsAStatusErrorNotATerminate) {
  // Text configs reach this path (scenario specs embed perfiso.* keys), so a
  // non-numeric or overflowing owner id must come back as a Status.
  ConfigMap map;
  map.SetDouble("io.owner.ml.iops", 5);
  EXPECT_FALSE(PerfIsoConfig::FromConfigMap(map).ok());

  ConfigMap overflow;
  overflow.SetDouble("io.owner.99999999999999999999.iops", 5);
  EXPECT_FALSE(PerfIsoConfig::FromConfigMap(overflow).ok());
}

TEST(PerfIsoConfigTest, StrictParseAcceptsFullCanonicalForm) {
  PerfIsoConfig config;
  config.io_limits.push_back(IoOwnerLimit{901, 60e6, 0, 1, 2.0, 100});
  auto strict = PerfIsoConfig::FromConfigMapStrict(config.ToConfigMap());
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  ASSERT_EQ(strict->io_limits.size(), 1u);
  EXPECT_EQ(strict->io_limits[0].owner, 901);
}

TEST(PerfIsoConfigTest, ModeNamesRoundTrip) {
  for (CpuIsolationMode mode :
       {CpuIsolationMode::kNone, CpuIsolationMode::kBlindIsolation,
        CpuIsolationMode::kStaticCores, CpuIsolationMode::kCpuRateCap}) {
    auto parsed = ParseCpuIsolationMode(CpuIsolationModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
}

TEST(PerfIsoConfigTest, ValidateRejectsBadValues) {
  PerfIsoConfig config;
  EXPECT_TRUE(config.Validate(48).ok());

  config.blind.buffer_cores = 48;
  EXPECT_FALSE(config.Validate(48).ok());
  config.blind.buffer_cores = 8;

  // Validation is scoped to the active mode: an out-of-range static-cores
  // value is ignored while in blind mode but rejected when it matters.
  config.static_secondary_cores = 49;
  EXPECT_TRUE(config.Validate(48).ok());
  config.cpu_mode = CpuIsolationMode::kStaticCores;
  EXPECT_FALSE(config.Validate(48).ok());
  config.static_secondary_cores = 8;
  config.cpu_mode = CpuIsolationMode::kBlindIsolation;

  config.blind.idle_deadband = -1;
  EXPECT_FALSE(config.Validate(48).ok());
  config.blind.idle_deadband = 2;

  config.cpu_mode = CpuIsolationMode::kCpuRateCap;
  config.cpu_rate_cap = 0;
  EXPECT_FALSE(config.Validate(48).ok());
  config.cpu_rate_cap = 1.5;
  EXPECT_FALSE(config.Validate(48).ok());
  config.cpu_rate_cap = 0.05;
  EXPECT_TRUE(config.Validate(48).ok());

  config.poll_interval = 0;
  EXPECT_FALSE(config.Validate(48).ok());
  config.poll_interval = FromMillis(1);

  config.net.link_rate_bps = 0;
  EXPECT_FALSE(config.Validate(48).ok());
  config.net.link_rate_bps = 10e9 / 8;

  config.net.uplink_oversubscription = 0.5;
  EXPECT_FALSE(config.Validate(48).ok());
  config.net.uplink_oversubscription = 4.0;

  config.net.chunk_bytes = 0;
  EXPECT_FALSE(config.Validate(48).ok());
  config.net.chunk_bytes = 64 * 1024;
  EXPECT_TRUE(config.Validate(48).ok());
}

}  // namespace
}  // namespace perfiso
