#!/usr/bin/env python3
"""Unit tests for scripts/check_bench_regression.py (stdlib only; run by ctest).

The guard has two jobs: fail on throughput drops in the guarded row, and fail
when the fresh run silently loses a row or metric the committed baseline has
— the coverage bug this suite pins is that a vanished row used to pass
because only the guarded row was ever read.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                      "scripts", "check_bench_regression.py")


def bench_doc(rows):
    """rows: {label: {metric: value}} -> BENCH_*.json document."""
    return {"bench": "test", "rows": [
        {"label": label, "metrics": metrics} for label, metrics in rows.items()
    ]}


ENGINE_ROW = {
    "pooled_events_per_sec": 10e6,
    "cancel_pairs_per_sec": 2e6,
    "legacy_events_per_sec": 5e6,
}
BASELINE = {
    "engine_throughput": ENGINE_ROW,
    "control_plane": {"reconfigs_per_sec": 1000.0},
}


class GuardTest(unittest.TestCase):
    def run_guard(self, baseline, fresh, *extra_args):
        """Writes both docs to temp files and runs the guard; returns the result."""
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            fresh_path = os.path.join(tmp, "fresh.json")
            with open(base_path, "w", encoding="utf-8") as f:
                json.dump(bench_doc(baseline), f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(bench_doc(fresh), f)
            return subprocess.run(
                [sys.executable, SCRIPT, "--fresh", fresh_path,
                 "--baseline", base_path, *extra_args],
                capture_output=True, text=True)

    def test_identical_runs_pass(self):
        result = self.run_guard(BASELINE, BASELINE)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("OK", result.stdout)

    def test_missing_row_in_fresh_fails(self):
        fresh = {"engine_throughput": ENGINE_ROW}  # control_plane vanished
        result = self.run_guard(BASELINE, fresh)
        self.assertEqual(result.returncode, 1)
        self.assertIn("control_plane", result.stderr)

    def test_missing_metric_in_fresh_fails(self):
        fresh = {
            "engine_throughput": ENGINE_ROW,
            "control_plane": {},  # reconfigs_per_sec vanished
        }
        result = self.run_guard(BASELINE, fresh)
        self.assertEqual(result.returncode, 1)
        self.assertIn("reconfigs_per_sec", result.stderr)

    def test_missing_guarded_row_fails_even_when_baseline_lacks_it_too(self):
        no_guard_row = {"control_plane": {"reconfigs_per_sec": 1000.0}}
        result = self.run_guard(no_guard_row, no_guard_row)
        self.assertEqual(result.returncode, 1)
        self.assertIn("engine_throughput", result.stderr)

    def test_extra_fresh_rows_are_fine(self):
        fresh = dict(BASELINE)
        fresh["brand_new_row"] = {"events_per_sec": 1.0}
        result = self.run_guard(BASELINE, fresh)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_drop_beyond_threshold_fails(self):
        fresh = dict(BASELINE)
        fresh["engine_throughput"] = dict(ENGINE_ROW,
                                          pooled_events_per_sec=8e6)  # -20%
        result = self.run_guard(BASELINE, fresh)
        self.assertEqual(result.returncode, 1)
        self.assertIn("pooled_events_per_sec", result.stderr + result.stdout)

    def test_drop_within_threshold_passes(self):
        fresh = dict(BASELINE)
        fresh["engine_throughput"] = dict(ENGINE_ROW,
                                          pooled_events_per_sec=9e6)  # -10%
        result = self.run_guard(BASELINE, fresh)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_normalize_key_masks_machine_speed(self):
        # Everything halves (slower machine): raw drop is 50%, normalized 0%.
        fresh = dict(BASELINE)
        fresh["engine_throughput"] = {k: v / 2 for k, v in ENGINE_ROW.items()}
        raw = self.run_guard(BASELINE, fresh)
        self.assertEqual(raw.returncode, 1)
        normalized = self.run_guard(BASELINE, fresh,
                                    "--normalize-key", "legacy_events_per_sec")
        self.assertEqual(normalized.returncode, 0, normalized.stderr)

    def test_row_and_metrics_filters_select_the_guarded_row(self):
        baseline = dict(BASELINE)
        baseline["cluster_scale"] = {"events_per_sec_best": 4e6,
                                     "events_per_sec_t1": 1e6}
        fresh = dict(baseline)
        fresh["cluster_scale"] = {"events_per_sec_best": 2e6,  # scaling halved
                                  "events_per_sec_t1": 1e6}
        result = self.run_guard(baseline, fresh,
                                "--row", "cluster_scale",
                                "--metrics", "events_per_sec_best",
                                "--normalize-key", "events_per_sec_t1")
        self.assertEqual(result.returncode, 1)
        self.assertIn("events_per_sec_best", result.stderr + result.stdout)

    def test_usage_error_on_bad_max_drop(self):
        result = self.run_guard(BASELINE, BASELINE, "--max-drop", "1.5")
        self.assertEqual(result.returncode, 2)


if __name__ == "__main__":
    unittest.main()
