// Observability subsystem: metrics registry + sampler, tracer attribution
// and sampling modes, Chrome-trace export, and the obs.* config surface.
#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "src/sim/simulator.h"
#include "src/util/sim_time.h"
#include "src/workload/scenario.h"

namespace perfiso {
namespace {

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, ColumnsFollowRegistrationOrder) {
  MetricsRegistry registry;
  Counter* submits = registry.AddCounter("client.submitted");
  Gauge* depth = registry.AddGauge("disk.queue_depth");
  registry.AddProbe("indexserve.inflight", [] { return 7.0; });
  HistogramMetric* lat = registry.AddHistogram("indexserve.latency_ms", 0, 100, 10);

  submits->Increment();
  submits->Increment(2);
  depth->Set(3.5);
  lat->Observe(10);
  lat->Observe(30);

  const std::vector<std::string> names = registry.ColumnNames();
  const std::vector<double> values = registry.ColumnValues();
  ASSERT_EQ(names.size(), values.size());
  // Histograms expand to count/mean/p50/p95/p99.
  const std::vector<std::string> want = {
      "client.submitted",          "disk.queue_depth",
      "indexserve.inflight",       "indexserve.latency_ms.count",
      "indexserve.latency_ms.mean", "indexserve.latency_ms.p50",
      "indexserve.latency_ms.p95", "indexserve.latency_ms.p99",
  };
  EXPECT_EQ(names, want);
  EXPECT_EQ(values[0], 3);    // counter
  EXPECT_EQ(values[1], 3.5);  // gauge
  EXPECT_EQ(values[2], 7.0);  // probe
  EXPECT_EQ(values[3], 2);    // histogram count
  EXPECT_EQ(values[4], 20);   // histogram mean
}

TEST(MetricsRegistry, ReregisteringANameReturnsTheExistingMetric) {
  MetricsRegistry registry;
  Counter* a = registry.AddCounter("disk.reads.completed");
  Counter* b = registry.AddCounter("disk.reads.completed");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
  EXPECT_EQ(registry.ColumnNames().size(), 1u);
}

TEST(TimeseriesSampler, SamplesEveryPeriodOfSimTime) {
  Simulator sim;
  MetricsRegistry registry;
  Counter* events = registry.AddCounter("sim.events");
  TimeseriesSampler sampler(&sim, &registry, FromMillis(100), FromMillis(50));

  sim.Schedule(FromMillis(120), [events] { events->Increment(); });
  sim.RunUntil(FromMillis(260));

  // Ticks at 100, 150, 200, 250 ms.
  EXPECT_EQ(sampler.NumRows(), 4u);
  sampler.SampleNow(sim.Now());
  EXPECT_EQ(sampler.NumRows(), 5u);
  // Same-instant flushes refresh the row instead of duplicating the time:
  // exported times_ns stay strictly increasing.
  sampler.SampleNow(sim.Now());
  EXPECT_EQ(sampler.NumRows(), 5u);

  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"period_ns\":50000000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sim.events\""), std::string::npos) << json;

  const std::string csv = sampler.ToCsv();
  EXPECT_EQ(csv.rfind("time_s,sim.events", 0), 0u) << csv;
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6) << csv;  // header + 5 rows
}

// --- Tracer ----------------------------------------------------------------

TEST(TailAttribution, PrioritySweepCoversLifetimeExactly) {
  // Lifetime [0, 10 ms]. cpu-wait over [0, 4), service over [2, 6): the
  // overlap [2, 6) goes to service (higher priority); [6, 10) is uncovered.
  std::vector<SpanRecord> spans;
  spans.push_back(SpanRecord{0, SpanCategory::kCpuWait, 0, 0, FromMillis(4)});
  spans.push_back(SpanRecord{1, SpanCategory::kService, 0, FromMillis(2), FromMillis(6)});
  const TailAttribution attribution =
      Tracer::ComputeAttribution(0, FromMillis(10), spans);
  EXPECT_NEAR(attribution.cpu_wait_ms, 2.0, 1e-9);
  EXPECT_NEAR(attribution.service_ms, 4.0, 1e-9);
  EXPECT_NEAR(attribution.other_ms, 4.0, 1e-9);
  EXPECT_NEAR(attribution.Total(), 10.0, 1e-9);
}

TEST(Tracer, RecordsSummariesAndRetainsSpansUnderKAll) {
  Tracer tracer(Tracer::Options{});
  const int pid = tracer.RegisterProcess("m0");
  const int track = tracer.RegisterTrack(pid, "core");

  const uint64_t ctx = tracer.BeginTrace("isq", FromMillis(1));
  tracer.Span(ctx, "cpu.run", SpanCategory::kService, track, FromMillis(1), FromMillis(4));
  tracer.EndTrace(ctx, FromMillis(5), /*dropped=*/false);

  ASSERT_EQ(tracer.summaries().size(), 1u);
  EXPECT_NEAR(tracer.summaries()[0].latency_ms, 4.0, 1e-9);
  EXPECT_FALSE(tracer.summaries()[0].dropped);
  ASSERT_EQ(tracer.Retained().size(), 1u);
  EXPECT_EQ(tracer.Retained()[0]->spans.size(), 1u);
  EXPECT_EQ(tracer.stats().begun, 1u);
  EXPECT_EQ(tracer.stats().ended, 1u);
  EXPECT_EQ(tracer.stats().retained, 1u);
}

TEST(Tracer, SlowestKKeepsTheKHighestLatencies) {
  Tracer::Options options;
  options.sampling = TraceSampling::kSlowestK;
  options.slowest_k = 2;
  Tracer tracer(options);
  for (const int latency : {1, 5, 3}) {
    const uint64_t ctx = tracer.BeginTrace("isq", 0);
    tracer.EndTrace(ctx, FromMillis(latency), false);
  }
  const auto retained = tracer.Retained();
  ASSERT_EQ(retained.size(), 2u);  // ascending latency order
  EXPECT_NEAR(retained[0]->latency_ms, 3.0, 1e-9);
  EXPECT_NEAR(retained[1]->latency_ms, 5.0, 1e-9);
  EXPECT_EQ(tracer.stats().dropped_traces, 1u);
  // Attribution is still computed for evicted traces: all three summarized.
  EXPECT_EQ(tracer.summaries().size(), 3u);
}

TEST(Tracer, ProbabilisticSamplingIsDeterministicInTheSeed) {
  const auto run = [](uint64_t seed) {
    Tracer::Options options;
    options.sampling = TraceSampling::kProbabilistic;
    options.sample_probability = 0.5;
    options.sample_seed = seed;
    Tracer tracer(options);
    std::vector<double> retained_latencies;
    for (int i = 0; i < 64; ++i) {
      const uint64_t ctx = tracer.BeginTrace("isq", 0);
      tracer.EndTrace(ctx, FromMillis(i + 1), false);
    }
    for (const RetainedTrace* t : tracer.Retained()) {
      retained_latencies.push_back(t->latency_ms);
    }
    return retained_latencies;
  };
  const auto a = run(1234);
  EXPECT_EQ(a, run(1234));
  EXPECT_FALSE(a.empty());
  EXPECT_LT(a.size(), 64u);
}

TEST(Tracer, OrphanSpansAreCountedNotCrashed) {
  Tracer tracer(Tracer::Options{});
  tracer.Span(/*ctx=*/999, "cpu.run", SpanCategory::kService, 0, 0, FromMillis(1));
  tracer.EndTrace(/*ctx=*/999, FromMillis(1), false);
  // Both the span and the end on an unknown context count as orphans.
  EXPECT_EQ(tracer.stats().orphan_spans, 2u);
  EXPECT_TRUE(tracer.summaries().empty());
}

TEST(Tracer, MaxEventsCapsRetainedSpans) {
  Tracer::Options options;
  options.max_events = 2;
  Tracer tracer(options);
  for (int i = 0; i < 3; ++i) {
    const uint64_t ctx = tracer.BeginTrace("isq", 0);
    tracer.Span(ctx, "cpu.run", SpanCategory::kService, 0, 0, FromMillis(1));
    tracer.Span(ctx, "cpu.wait", SpanCategory::kCpuWait, 0, 0, FromMillis(1));
    tracer.EndTrace(ctx, FromMillis(1), false);
  }
  EXPECT_EQ(tracer.Retained().size(), 1u);       // first trace fills the cap
  EXPECT_EQ(tracer.stats().dropped_traces, 2u);
  EXPECT_EQ(tracer.summaries().size(), 3u);      // summaries are never capped
}

// --- Chrome-trace export ---------------------------------------------------

TEST(ChromeTraceExport, EmitsWellFormedEventShapes) {
  Tracer tracer(Tracer::Options{});
  const int pid = tracer.RegisterProcess("m0");
  const int track = tracer.RegisterTrack(pid, "core");
  const uint64_t ctx = tracer.BeginTrace("isq", FromMillis(1));
  tracer.Span(ctx, "cpu.run", SpanCategory::kService, track, FromMillis(1), FromMillis(3));
  tracer.Instant("hedge.issued", track, FromMillis(2));
  tracer.EndTrace(ctx, FromMillis(4), false);

  const std::string json = ExportChromeTrace(tracer);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process metadata
  EXPECT_NE(json.find("\"name\":\"m0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);  // async begin
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);  // async end
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("cpu.run"), std::string::npos);
  EXPECT_NE(json.find("hedge.issued"), std::string::npos);
  // The query lifetime carries the attribution breakdown in its args.
  EXPECT_NE(json.find("service_ms"), std::string::npos);
}

// --- P99 attribution table -------------------------------------------------

TEST(AttributionTable, EmptyTracerProducesEmptyTable) {
  Tracer tracer(Tracer::Options{});
  EXPECT_EQ(FormatP99AttributionTable(tracer), "");
}

TEST(AttributionTable, CohortCoversTheSlowestQueries) {
  Tracer tracer(Tracer::Options{});
  for (int i = 1; i <= 100; ++i) {
    const uint64_t ctx = tracer.BeginTrace("isq", 0);
    tracer.Span(ctx, "cpu.run", SpanCategory::kService, 0, 0, FromMillis(i));
    tracer.EndTrace(ctx, FromMillis(i), false);
  }
  const std::string table = FormatP99AttributionTable(tracer);
  EXPECT_EQ(table.rfind("P99 cohort (", 0), 0u) << table;
  EXPECT_NE(table.find("service"), std::string::npos);
  EXPECT_NE(table.find("cpu_wait"), std::string::npos);
  // Everything is service time here, so service carries ~100%.
  EXPECT_NE(table.find("100.0%"), std::string::npos) << table;
}

// --- obs.* config surface --------------------------------------------------

TEST(ObsSpec, DisabledSerializesToNothing) {
  ObsSpec spec;
  ConfigMap map;
  spec.AppendToConfigMap(&map);
  EXPECT_TRUE(map.entries().empty());
}

TEST(ObsSpec, RoundTripsThroughConfigMap) {
  ObsSpec spec;
  spec.enabled = true;
  spec.metrics_period = FromMillis(20);
  spec.sampling = TraceSampling::kSlowestK;
  spec.slowest_k = 32;
  spec.trace_max_events = 5000;

  ConfigMap map;
  spec.AppendToConfigMap(&map);
  const auto parsed = ObsSpec::FromConfigMap(map);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->enabled);
  EXPECT_EQ(parsed->metrics_period, FromMillis(20));
  EXPECT_EQ(parsed->sampling, TraceSampling::kSlowestK);
  EXPECT_EQ(parsed->slowest_k, 32);
  EXPECT_EQ(parsed->trace_max_events, 5000);
}

TEST(ObsSpec, ValidateRejectsBadKnobs) {
  ObsSpec spec;
  spec.enabled = true;
  spec.metrics_period = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = ObsSpec{};
  spec.enabled = true;
  spec.sampling = TraceSampling::kProbabilistic;
  spec.sample_probability = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  // Disabled specs are never invalid: the knobs are inert.
  spec.enabled = false;
  EXPECT_TRUE(spec.Validate().ok());

  EXPECT_FALSE(ParseTraceSampling("sometimes").ok());
}

TEST(ObsSpec, RidesInsideScenarioSpecRoundTrip) {
  ScenarioSpec scenario;
  scenario.name = "obs-roundtrip";
  scenario.obs.enabled = true;
  scenario.obs.sampling = TraceSampling::kProbabilistic;
  scenario.obs.sample_probability = 0.25;
  scenario.obs.sample_seed = 99;

  const ConfigMap map = scenario.ToConfigMap();
  const auto parsed = ScenarioSpec::FromConfigMap(map);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->obs.enabled);
  EXPECT_EQ(parsed->obs.sampling, TraceSampling::kProbabilistic);
  EXPECT_EQ(parsed->obs.sample_probability, 0.25);
  EXPECT_EQ(parsed->obs.sample_seed, 99u);
}

TEST(ObsContext, StartSamplingAttachesASampler) {
  Simulator sim;
  ObsSpec spec;
  spec.enabled = true;
  spec.metrics_period = FromMillis(10);
  ObsContext ctx(spec);
  ctx.registry.AddProbe("sim.now_ms", [&sim] { return ToMillis(sim.Now()); });
  ctx.StartSampling(&sim, FromMillis(10));
  sim.RunUntil(FromMillis(45));
  ASSERT_NE(ctx.sampler, nullptr);
  EXPECT_EQ(ctx.sampler->NumRows(), 4u);  // 10, 20, 30, 40 ms
}

}  // namespace
}  // namespace perfiso
