#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions options;
  options.topology = ClusterTopology{4, 2, 2};
  return options;
}

TEST(ClusterTest, SingleQueryTraversesAllLayers) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  QueryWork work;
  work.id = 1;
  work.fanout = 5;
  work.size_factor = 1;
  work.seed = 42;
  QueryResult result;
  bool done = false;
  cluster.SubmitQuery(work, [&](const QueryResult& r) {
    result = r;
    done = true;
  });
  sim.RunUntil(kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster.queries_completed(), 1);
  // Per-layer recorders each saw the query.
  EXPECT_EQ(cluster.MlaLatency().Count(), 1u);
  EXPECT_EQ(cluster.TlaLatency().Count(), 1u);
  // Every leaf in the chosen row processed it.
  EXPECT_EQ(cluster.MergedLeafLatency().Count(), 4u);
  // Layering: TLA latency >= MLA latency >= slowest leaf latency.
  EXPECT_GE(cluster.TlaLatency().Max(), cluster.MlaLatency().Max());
  EXPECT_GE(cluster.MlaLatency().Max(), cluster.MergedLeafLatency().Max());
  EXPECT_NEAR(result.latency_ms, cluster.TlaLatency().Max(), 1e-9);
}

TEST(ClusterTest, RoundRobinAcrossRowsBalancesLoad) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  Rng rng(1);
  auto trace = GenerateTrace(TraceSpec{}, 64, &rng);
  for (const auto& work : trace) {
    cluster.SubmitQuery(work);
  }
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(cluster.queries_completed(), 64);
  // Each of the 8 leaves sits in one row and sees exactly half the queries.
  for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
    EXPECT_EQ(cluster.index_node(i).server().stats().submitted, 32);
  }
}

TEST(ClusterTest, MlaRotatesWithinRow) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  Rng rng(2);
  auto trace = GenerateTrace(TraceSpec{}, 32, &rng);
  for (const auto& work : trace) {
    cluster.SubmitQuery(work);
  }
  sim.RunUntil(5 * kSecond);
  // MLA merge work should appear on every index machine (round-robin MLA
  // selection), visible as primary busy time beyond leaf-only load.
  for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
    EXPECT_GT(cluster.index_node(i).machine().metrics().busy_ns[0], 0);
  }
}

TEST(ClusterTest, SlowestLeafDictatesResponseTime) {
  // With one row and N columns, TLA latency tracks the max leaf latency.
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{6, 1, 1};
  Cluster cluster(&sim, options);
  Rng rng(3);
  auto trace = GenerateTrace(TraceSpec{}, 40, &rng);
  for (const auto& work : trace) {
    cluster.SubmitQuery(work);
  }
  sim.RunUntil(10 * kSecond);
  ASSERT_EQ(cluster.queries_completed(), 40);
  // The mean TLA latency must exceed the mean leaf latency by the
  // max-over-6-leaves amplification (clearly more than any single leaf).
  EXPECT_GT(cluster.TlaLatency().Mean(), cluster.MergedLeafLatency().Mean());
}

TEST(ClusterTest, ResetStatsClearsEverything) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  QueryWork work;
  work.fanout = 4;
  work.size_factor = 1;
  work.seed = 9;
  cluster.SubmitQuery(work);
  sim.RunUntil(kSecond);
  ASSERT_EQ(cluster.queries_completed(), 1);
  cluster.ResetStats();
  EXPECT_EQ(cluster.queries_completed(), 0);
  EXPECT_EQ(cluster.TlaLatency().Count(), 0u);
  EXPECT_EQ(cluster.MergedLeafLatency().Count(), 0u);
}

TEST(ClusterTest, UtilizationAveragesAcrossMachines) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  const auto snaps = cluster.SnapshotAll();
  // Saturate node 0 with a bully; others stay idle.
  cluster.index_node(0).StartCpuBully(48);
  sim.RunUntil(kSecond);
  const double secondary = cluster.MeanUtilizationSince(snaps, TenantClass::kSecondary);
  EXPECT_NEAR(secondary, 1.0 / 8, 0.02);  // one of eight machines fully busy
  EXPECT_NEAR(cluster.MeanBusyFractionSince(snaps), 1.0 / 8, 0.05);
}

TEST(ClusterTest, PerfIsoOnEveryNodeProtectsClusterTail) {
  // End-to-end miniature of Fig. 9b: bully + blind isolation on every node.
  auto run = [](bool bully) {
    Simulator sim;
    ClusterOptions options;
    options.topology = ClusterTopology{4, 1, 1};
    Cluster cluster(&sim, options);
    if (bully) {
      cluster.ForEachIndexNode([&](IndexNodeRig& node) {
        node.StartCpuBully(48);
        PerfIsoConfig config;
        config.cpu_mode = CpuIsolationMode::kBlindIsolation;
        config.blind.buffer_cores = 8;
        ASSERT_TRUE(node.StartPerfIso(config).ok());
      });
    }
    Rng rng(7);
    auto trace = GenerateTrace(TraceSpec{}, 4000, &rng);
    OpenLoopClient client(&sim, std::move(trace), 2000, Rng(8),
                          [&](const QueryWork& work, SimTime) { cluster.SubmitQuery(work); });
    client.Run(0, 2 * kSecond);
    sim.RunUntil(3 * kSecond);
    return cluster.TlaLatency().P99();
  };
  const double baseline = run(false);
  const double isolated = run(true);
  EXPECT_LT(isolated - baseline, 1.5);  // the paper's bound: ~1.1 ms at the TLA
}

}  // namespace
}  // namespace perfiso
