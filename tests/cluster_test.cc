#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions options;
  options.topology = ClusterTopology{4, 2, 2};
  return options;
}

TEST(ClusterTest, SingleQueryTraversesAllLayers) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  QueryWork work;
  work.id = 1;
  work.fanout = 5;
  work.size_factor = 1;
  work.seed = 42;
  QueryResult result;
  bool done = false;
  cluster.SubmitQuery(work, [&](const QueryResult& r) {
    result = r;
    done = true;
  });
  sim.RunUntil(kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster.queries_completed(), 1);
  // Per-layer recorders each saw the query.
  EXPECT_EQ(cluster.MlaLatency().Count(), 1u);
  EXPECT_EQ(cluster.TlaLatency().Count(), 1u);
  // Every leaf in the chosen row processed it.
  EXPECT_EQ(cluster.MergedLeafLatency().Count(), 4u);
  // Layering: TLA latency >= MLA latency >= slowest leaf latency.
  EXPECT_GE(cluster.TlaLatency().Max(), cluster.MlaLatency().Max());
  EXPECT_GE(cluster.MlaLatency().Max(), cluster.MergedLeafLatency().Max());
  EXPECT_NEAR(result.latency_ms, cluster.TlaLatency().Max(), 1e-9);
}

TEST(ClusterTest, RoundRobinAcrossRowsBalancesLoad) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  Rng rng(1);
  auto trace = GenerateTrace(TraceSpec{}, 64, &rng);
  for (const auto& work : trace) {
    cluster.SubmitQuery(work);
  }
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(cluster.queries_completed(), 64);
  // Each of the 8 leaves sits in one row and sees exactly half the queries.
  for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
    EXPECT_EQ(cluster.index_node(i).server().stats().submitted, 32);
  }
}

TEST(ClusterTest, MlaRotatesWithinRow) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  Rng rng(2);
  auto trace = GenerateTrace(TraceSpec{}, 32, &rng);
  for (const auto& work : trace) {
    cluster.SubmitQuery(work);
  }
  sim.RunUntil(5 * kSecond);
  // MLA merge work should appear on every index machine (round-robin MLA
  // selection), visible as primary busy time beyond leaf-only load.
  for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
    EXPECT_GT(cluster.index_node(i).machine().metrics().busy_ns[0], 0);
  }
}

TEST(ClusterTest, SlowestLeafDictatesResponseTime) {
  // With one row and N columns, TLA latency tracks the max leaf latency.
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{6, 1, 1};
  Cluster cluster(&sim, options);
  Rng rng(3);
  auto trace = GenerateTrace(TraceSpec{}, 40, &rng);
  for (const auto& work : trace) {
    cluster.SubmitQuery(work);
  }
  sim.RunUntil(10 * kSecond);
  ASSERT_EQ(cluster.queries_completed(), 40);
  // The mean TLA latency must exceed the mean leaf latency by the
  // max-over-6-leaves amplification (clearly more than any single leaf).
  EXPECT_GT(cluster.TlaLatency().Mean(), cluster.MergedLeafLatency().Mean());
}

TEST(ClusterTest, ResetStatsClearsEverything) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  QueryWork work;
  work.fanout = 4;
  work.size_factor = 1;
  work.seed = 9;
  cluster.SubmitQuery(work);
  sim.RunUntil(kSecond);
  ASSERT_EQ(cluster.queries_completed(), 1);
  cluster.ResetStats();
  EXPECT_EQ(cluster.queries_completed(), 0);
  EXPECT_EQ(cluster.TlaLatency().Count(), 0u);
  EXPECT_EQ(cluster.MergedLeafLatency().Count(), 0u);
}

TEST(ClusterTest, UtilizationAveragesAcrossMachines) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  const auto snaps = cluster.SnapshotAll();
  // Saturate node 0 with a bully; others stay idle.
  cluster.index_node(0).StartCpuBully(48);
  sim.RunUntil(kSecond);
  const double secondary = cluster.MeanUtilizationSince(snaps, TenantClass::kSecondary);
  EXPECT_NEAR(secondary, 1.0 / 8, 0.02);  // one of eight machines fully busy
  EXPECT_NEAR(cluster.MeanBusyFractionSince(snaps), 1.0 / 8, 0.05);
}

TEST(ClusterTest, RpcsTravelTheFabric) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  QueryWork work;
  work.id = 1;
  work.fanout = 5;
  work.size_factor = 1;
  work.seed = 42;
  bool done = false;
  cluster.SubmitQuery(work, [&](const QueryResult&) { done = true; });
  sim.RunUntil(kSecond);
  ASSERT_TRUE(done);
  Fabric& fabric = cluster.fabric();
  // 4 columns, 1 local leaf at the MLA: TLA->MLA request, 3 remote leaf
  // requests, 3 leaf responses, 1 final response = 8 primary flows.
  int64_t delivered = 0;
  for (int i = 0; i < fabric.num_endpoints(); ++i) {
    delivered += fabric.endpoint_stats(i).flows_delivered[0];
  }
  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(fabric.flows_in_flight(), 0);
  // The MLA's RX link absorbed the leaf fan-in (3 responses + the request).
  const auto& stats = cluster.TlaLatency();
  EXPECT_EQ(stats.Count(), 1u);
}

TEST(ClusterTest, FabricRoutedLatencyWithinFig09ReferenceTolerance) {
  // Fig. 9 guard for the fabric rewire: at production-like per-machine load
  // the network layers add serialization + incast, but the cluster P99 must
  // stay in the regime the closed-form model produced (the bench's reference
  // tolerances are anchored to the paper's ~16 ms TLA P99 at this scale).
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{4, 1, 2};
  Cluster cluster(&sim, options);
  cluster.ForEachIndexNode(
      [&](IndexNodeRig& node) { node.StartHdfsClient(HdfsClient::Options{}); });
  Rng rng(11);
  auto trace = GenerateTrace(TraceSpec{}, 4000, &rng);
  OpenLoopClient client(&sim, std::move(trace), 2000, Rng(12),
                        [&](const QueryWork& work, SimTime) { cluster.SubmitQuery(work); });
  client.Run(0, 2 * kSecond);
  sim.RunUntil(3 * kSecond);
  ASSERT_GT(cluster.queries_completed(), 3500);
  // Pre-fabric this configuration measures ~13.6 ms TLA P99; the fabric may
  // add at most the paper's ~1.2 ms cross-layer tolerance on top.
  EXPECT_LT(cluster.TlaLatency().P99() - cluster.MergedLeafLatency().P99(), 10.0);
  EXPECT_LT(cluster.TlaLatency().P99(), 15.0);
  // Light RPC traffic: network transit stays in the sub-millisecond regime.
  EXPECT_LT(cluster.fabric().FlowLatencyMs(NetClass::kPrimary).P99(), 1.0);
}

TEST(ClusterTest, EgressCapRestoresTailUnderNetworkBully) {
  // Miniature of bench/fig_net_egress: an HDFS-replication-style bully on
  // every index machine floods its peers' RX links; the static egress cap
  // shapes it at the source and the tail recovers.
  auto run = [](bool bully, double egress_cap) {
    Simulator sim;
    ClusterOptions options;
    options.topology = ClusterTopology{4, 1, 1};
    Cluster cluster(&sim, options);
    if (bully) {
      for (int i = 0; i < cluster.NumIndexNodes(); ++i) {
        NetworkBully::Options net;
        net.block_bytes = 1024 * 1024;
        net.streams = 8;
        for (int p = 0; p < cluster.NumIndexNodes(); ++p) {
          if (p != i) {
            net.peers.push_back(cluster.index_endpoint(p));
          }
        }
        cluster.index_node(i).StartNetworkBully(&cluster.fabric(),
                                                cluster.index_endpoint(i), net);
        PerfIsoConfig config;
        config.cpu_mode = CpuIsolationMode::kBlindIsolation;
        config.blind.buffer_cores = 8;
        config.egress_rate_cap_bps = egress_cap;
        EXPECT_TRUE(cluster.index_node(i).StartPerfIso(config).ok());
      }
    }
    Rng rng(21);
    auto trace = GenerateTrace(TraceSpec{}, 2000, &rng);
    OpenLoopClient client(&sim, std::move(trace), 1000, Rng(22),
                          [&](const QueryWork& work, SimTime) { cluster.SubmitQuery(work); });
    client.Run(0, 2 * kSecond);
    sim.RunUntil(3 * kSecond);
    return cluster.TlaLatency().P99();
  };
  const double baseline = run(false, 0);
  const double uncapped = run(true, 0);
  const double capped = run(true, 50e6);
  EXPECT_GT(uncapped, 1.5 * baseline);  // the bully hurts through the network
  EXPECT_LT(capped, 1.25 * baseline);   // the egress cap restores the tail
}

TEST(ClusterTest, PerfIsoOnEveryNodeProtectsClusterTail) {
  // End-to-end miniature of Fig. 9b: bully + blind isolation on every node.
  auto run = [](bool bully) {
    Simulator sim;
    ClusterOptions options;
    options.topology = ClusterTopology{4, 1, 1};
    Cluster cluster(&sim, options);
    if (bully) {
      cluster.ForEachIndexNode([&](IndexNodeRig& node) {
        node.StartCpuBully(48);
        PerfIsoConfig config;
        config.cpu_mode = CpuIsolationMode::kBlindIsolation;
        config.blind.buffer_cores = 8;
        ASSERT_TRUE(node.StartPerfIso(config).ok());
      });
    }
    Rng rng(7);
    auto trace = GenerateTrace(TraceSpec{}, 4000, &rng);
    OpenLoopClient client(&sim, std::move(trace), 2000, Rng(8),
                          [&](const QueryWork& work, SimTime) { cluster.SubmitQuery(work); });
    client.Run(0, 2 * kSecond);
    sim.RunUntil(3 * kSecond);
    return cluster.TlaLatency().P99();
  };
  const double baseline = run(false);
  const double isolated = run(true);
  EXPECT_LT(isolated - baseline, 1.5);  // the paper's bound: ~1.1 ms at the TLA
}

}  // namespace
}  // namespace perfiso
