#include "src/perfiso/io_throttler.h"

#include <gtest/gtest.h>

#include <map>

namespace perfiso {
namespace {

// A scriptable platform for exercising the §4.1 demand/deficit formulas.
class FakePlatform : public Platform {
 public:
  int NumCores() const override { return 48; }
  SimTime NowNs() override { return now_; }
  CpuSet IdleCores() override { return CpuSet(); }
  Status SetSecondaryAffinity(const CpuSet&) override { return OkStatus(); }
  Status SetSecondaryCpuRateCap(double) override { return OkStatus(); }
  StatusOr<int64_t> FreeMemoryBytes() override { return int64_t{1} << 40; }
  Status KillSecondary() override { return OkStatus(); }
  Status SetIoPriority(int owner, int priority) override {
    priorities_[owner] = priority;
    ++priority_sets_;
    return OkStatus();
  }
  Status SetIoIopsCap(int owner, double iops) override {
    iops_caps_[owner] = iops;
    return OkStatus();
  }
  Status SetIoBandwidthCap(int owner, double bps) override {
    bandwidth_caps_[owner] = bps;
    return OkStatus();
  }
  StatusOr<int64_t> IoOpsCompleted(int owner) override { return ops_[owner]; }
  Status SetEgressRateCap(double) override { return OkStatus(); }

  // Advances time by 1 s and adds one second's worth of ops at `iops`.
  void Tick(const std::map<int, int64_t>& iops) {
    now_ += kSecond;
    for (const auto& [owner, rate] : iops) {
      ops_[owner] += rate;
    }
  }

  SimTime now_ = 0;
  std::map<int, int64_t> ops_;
  std::map<int, int> priorities_;
  std::map<int, double> iops_caps_;
  std::map<int, double> bandwidth_caps_;
  int priority_sets_ = 0;
};

std::vector<IoOwnerLimit> TwoOwners() {
  // Owner 1: guaranteed 200 IOPS, base priority 1, weight 1.
  // Owner 2: no guarantee, base priority 1, weight 1.
  return {IoOwnerLimit{1, 0, 0, 1, 1.0, 200}, IoOwnerLimit{2, 0, 0, 1, 1.0, 0}};
}

TEST(IoThrottlerTest, StaticLimitsApplied) {
  FakePlatform platform;
  std::vector<IoOwnerLimit> limits = {IoOwnerLimit{5, 60e6, 100, 2, 1.0, 0}};
  IoThrottler throttler(&platform, limits, IoThrottler::Options{});
  ASSERT_TRUE(throttler.ApplyStaticLimits().ok());
  EXPECT_DOUBLE_EQ(platform.bandwidth_caps_[5], 60e6);
  EXPECT_DOUBLE_EQ(platform.iops_caps_[5], 100);
  EXPECT_EQ(platform.priorities_[5], 2);
}

TEST(IoThrottlerTest, ComputesDemandAsWeightedShare) {
  FakePlatform platform;
  IoThrottler throttler(&platform, TwoOwners(), IoThrottler::Options{});
  throttler.Poll(platform.NowNs());  // baseline
  for (int i = 0; i < 4; ++i) {
    platform.Tick({{1, 1000}, {2, 100}});
    throttler.Poll(platform.NowNs());
  }
  // Total 1100 IOPS, equal weights -> each owner's demand is 550.
  EXPECT_NEAR(throttler.Demand(1), 550, 1);
  EXPECT_NEAR(throttler.Demand(2), 550, 1);
  EXPECT_NEAR(throttler.SmoothedIops(1), 1000, 1);
}

TEST(IoThrottlerTest, HogAboveGuaranteeGetsDemoted) {
  FakePlatform platform;
  IoThrottler throttler(&platform, TwoOwners(), IoThrottler::Options{});
  ASSERT_TRUE(throttler.ApplyStaticLimits().ok());  // installs base priorities
  throttler.Poll(platform.NowNs());
  for (int i = 0; i < 4; ++i) {
    platform.Tick({{1, 1000}, {2, 100}});
    throttler.Poll(platform.NowNs());
  }
  // Owner 1's entitlement is min(lim=200, D=550) = 200; deficit = 4.0 > 0.5.
  EXPECT_GT(throttler.Deficit(1), 0.5);
  EXPECT_EQ(platform.priorities_[1], 2);  // demoted from base 1
  // Owner 2 is under its demand-share: stays at (or returns to) its base.
  EXPECT_LT(throttler.Deficit(2), 0);
  EXPECT_EQ(platform.priorities_[2], 1);
  EXPECT_GT(throttler.adjustments(), 0);
}

TEST(IoThrottlerTest, DemotionRevertsWhenLoadDrops) {
  FakePlatform platform;
  IoThrottler::Options options;
  options.window_polls = 2;  // short memory so the revert is quick
  IoThrottler throttler(&platform, TwoOwners(), options);
  throttler.Poll(platform.NowNs());
  for (int i = 0; i < 3; ++i) {
    platform.Tick({{1, 1000}, {2, 100}});
    throttler.Poll(platform.NowNs());
  }
  ASSERT_EQ(platform.priorities_[1], 2);
  // The hog calms down below its guarantee.
  for (int i = 0; i < 4; ++i) {
    platform.Tick({{1, 50}, {2, 100}});
    throttler.Poll(platform.NowNs());
  }
  EXPECT_EQ(platform.priorities_[1], 1);  // promoted back to its base band
}

TEST(IoThrottlerTest, NoMeasurementNoAdjustment) {
  FakePlatform platform;
  IoThrottler throttler(&platform, TwoOwners(), IoThrottler::Options{});
  throttler.Poll(platform.NowNs());
  throttler.Poll(platform.NowNs());  // same timestamp: no window elapsed
  EXPECT_EQ(throttler.adjustments(), 0);
}

}  // namespace
}  // namespace perfiso
