// ScenarioSpec serialization: every workload.* knob must survive a
// ToConfigMap/FromConfigMap round trip, unknown or inapplicable keys must be
// rejected, and invalid shapes must come back as status errors (the
// perfiso_config_test.cc pattern).
#include "src/workload/scenario.h"

#include <gtest/gtest.h>

namespace perfiso {
namespace {

TEST(ScenarioSpecTest, OpenLoopDiurnalRoundTripsThroughConfigMap) {
  ScenarioSpec spec;
  spec.name = "unit-diurnal";
  spec.load = DiurnalLoad(/*peak_qps=*/3500, /*period_sec=*/30, /*trough_fraction=*/0.25);
  spec.client = ClientKind::kOpenLoop;
  spec.tenants.cpu_bully_threads = 24;
  spec.tenants.disk_bully = true;
  spec.tenants.hdfs_client = true;
  spec.tenants.ml_training = true;
  spec.tenants.ml_worker_threads = 12;
  spec.topology = TopologySpec{6, 3, 5};
  spec.sim_partitions = 4;
  spec.warmup = 2 * kSecond;
  spec.measure = 12 * kSecond;
  spec.trace_count = 4096;
  spec.trace_seed = 99;
  spec.client_seed = 11;
  spec.node_seed = 13;
  PerfIsoConfig config;
  config.cpu_mode = CpuIsolationMode::kBlindIsolation;
  config.blind.buffer_cores = 6;
  config.io_limits.push_back(IoOwnerLimit{903, 100e6, 0, 2, 1.0, 0});
  spec.perfiso = config;

  auto parsed = ScenarioSpec::FromConfigMap(spec.ToConfigMap());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ScenarioSpec& back = *parsed;
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.load.kind, LoadShapeKind::kDiurnal);
  EXPECT_DOUBLE_EQ(back.load.qps, spec.load.qps);
  EXPECT_DOUBLE_EQ(back.load.diurnal_period_sec, spec.load.diurnal_period_sec);
  EXPECT_DOUBLE_EQ(back.load.diurnal_trough_fraction, spec.load.diurnal_trough_fraction);
  EXPECT_EQ(back.client, ClientKind::kOpenLoop);
  EXPECT_EQ(back.tenants.cpu_bully_threads, spec.tenants.cpu_bully_threads);
  EXPECT_EQ(back.tenants.disk_bully, spec.tenants.disk_bully);
  EXPECT_EQ(back.tenants.hdfs_client, spec.tenants.hdfs_client);
  EXPECT_EQ(back.tenants.ml_training, spec.tenants.ml_training);
  EXPECT_EQ(back.tenants.ml_worker_threads, spec.tenants.ml_worker_threads);
  EXPECT_EQ(back.topology.columns, spec.topology.columns);
  EXPECT_EQ(back.topology.rows, spec.topology.rows);
  EXPECT_EQ(back.topology.tla_machines, spec.topology.tla_machines);
  EXPECT_EQ(back.sim_partitions, spec.sim_partitions);
  EXPECT_EQ(back.warmup, spec.warmup);
  EXPECT_EQ(back.measure, spec.measure);
  EXPECT_EQ(back.trace_count, spec.trace_count);
  EXPECT_EQ(back.trace_seed, spec.trace_seed);
  EXPECT_EQ(back.client_seed, spec.client_seed);
  EXPECT_EQ(back.node_seed, spec.node_seed);
  ASSERT_TRUE(back.perfiso.has_value());
  EXPECT_EQ(back.perfiso->cpu_mode, CpuIsolationMode::kBlindIsolation);
  EXPECT_EQ(back.perfiso->blind.buffer_cores, 6);
  ASSERT_EQ(back.perfiso->io_limits.size(), 1u);
  EXPECT_EQ(back.perfiso->io_limits[0].owner, 903);
  EXPECT_DOUBLE_EQ(back.perfiso->io_limits[0].bandwidth_bps, 100e6);
}

TEST(ScenarioSpecTest, ClosedLoopPiecewiseRoundTripsThroughConfigMap) {
  ScenarioSpec spec;
  spec.name = "unit-closed";
  spec.load.kind = LoadShapeKind::kPiecewise;
  spec.load.piecewise = {{0, 1000}, {5, 2500}, {10, 500}};
  spec.client = ClientKind::kClosedLoop;
  spec.closed.outstanding = 96;
  spec.closed.think_time = FromMillis(2);

  auto parsed = ScenarioSpec::FromConfigMap(spec.ToConfigMap());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->client, ClientKind::kClosedLoop);
  EXPECT_EQ(parsed->closed.outstanding, 96);
  EXPECT_EQ(parsed->closed.think_time, FromMillis(2));
  ASSERT_EQ(parsed->load.piecewise.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed->load.piecewise[1].at_sec, 5);
  EXPECT_DOUBLE_EQ(parsed->load.piecewise[1].qps, 2500);
  EXPECT_FALSE(parsed->perfiso.has_value());
}

TEST(ScenarioSpecTest, EveryShapeKindRoundTrips) {
  for (LoadShapeKind kind :
       {LoadShapeKind::kConstant, LoadShapeKind::kDiurnal, LoadShapeKind::kRamp,
        LoadShapeKind::kFlashCrowd, LoadShapeKind::kSquareWave, LoadShapeKind::kPiecewise}) {
    ScenarioSpec spec;
    spec.load.kind = kind;
    if (kind == LoadShapeKind::kPiecewise) {
      spec.load.piecewise = {{0, 750}};
    }
    auto parsed = ScenarioSpec::FromConfigMap(spec.ToConfigMap());
    ASSERT_TRUE(parsed.ok()) << LoadShapeKindName(kind) << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(parsed->load.kind, kind);
  }
}

TEST(ScenarioSpecTest, SimPartitionsValidation) {
  // Default stays sequential and serializes nothing, keeping legacy configs
  // and golden digests untouched.
  ScenarioSpec spec;
  EXPECT_EQ(spec.sim_partitions, 0);
  EXPECT_FALSE(spec.ToConfigMap().Has("workload.sim.partitions"));

  // Partitioning requires a cluster topology.
  spec.sim_partitions = 4;
  EXPECT_FALSE(spec.Validate().ok());
  spec.topology = TopologySpec{4, 6, 3};
  EXPECT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();

  // 1 partition would be sequential-with-extra-steps; reject it so configs
  // say what they mean. Negative is nonsense.
  spec.sim_partitions = 1;
  EXPECT_FALSE(spec.Validate().ok());
  spec.sim_partitions = -2;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(ScenarioSpecTest, DefaultsFromEmptyMap) {
  auto spec = ScenarioSpec::FromConfigMap(ConfigMap());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->load.kind, LoadShapeKind::kConstant);
  EXPECT_DOUBLE_EQ(spec->load.qps, 2000);
  EXPECT_EQ(spec->client, ClientKind::kOpenLoop);
  EXPECT_EQ(spec->topology.columns, 0);  // single box
  EXPECT_FALSE(spec->perfiso.has_value());
}

TEST(ScenarioSpecTest, UnknownKeysRejected) {
  {
    ConfigMap map;
    map.SetDouble("workload.qsp", 100);  // typo
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetString("workload.isolation", "perfiso");
    map.SetString("perfiso.cpu.modes", "blind");  // typo inside perfiso.*
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetDouble("cpu.buffer_cores", 8);  // outside workload./perfiso.
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
}

TEST(ScenarioSpecTest, InapplicableKeysRejected) {
  // A ramp knob on a constant-shape scenario would silently do nothing.
  ConfigMap map;
  map.SetString("workload.shape", "constant");
  map.SetDouble("workload.ramp.end_qps", 4000);
  EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());

  // Closed-loop knobs on an open-loop scenario likewise.
  ConfigMap closed;
  closed.SetInt("workload.closed.outstanding", 8);
  EXPECT_FALSE(ScenarioSpec::FromConfigMap(closed).ok());

  // Piecewise rates come only from the table, so a qps knob is inapplicable
  // (it would be silently ignored otherwise).
  ConfigMap piecewise;
  piecewise.SetString("workload.shape", "piecewise");
  piecewise.SetString("workload.piecewise", "0:100");
  piecewise.SetDouble("workload.qps", 500);
  EXPECT_FALSE(ScenarioSpec::FromConfigMap(piecewise).ok());
}

TEST(ScenarioSpecTest, PerfIsoKeysWithoutIsolationRejected) {
  ConfigMap map;
  map.SetInt("perfiso.cpu.buffer_cores", 8);  // but workload.isolation = none
  EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
}

TEST(ScenarioSpecTest, InvalidShapesReturnStatusErrors) {
  {
    ConfigMap map;
    map.SetDouble("workload.qps", -5);  // negative rate
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetString("workload.shape", "piecewise");
    map.SetString("workload.piecewise", "");  // empty table
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetString("workload.shape", "piecewise");
    map.SetString("workload.piecewise", "0:100,oops");  // malformed entry
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetString("workload.shape", "piecewise");
    map.SetString("workload.piecewise", "0:100,5:2000,");  // trailing comma
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetString("workload.shape", "piecewise");
    map.SetString("workload.piecewise", "0:100,,5:2000");  // empty entry
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetString("workload.shape", "square_wave");
    map.SetDouble("workload.square.duty", 1.5);  // duty outside (0, 1)
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetString("workload.shape", "warble");  // unknown shape
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetInt("workload.trace.count", 0);
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
  {
    ConfigMap map;
    map.SetInt("workload.measure_ns", -1);
    EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());
  }
}

TEST(ScenarioSpecTest, ValidateChecksClientAndTopology) {
  ScenarioSpec spec;
  EXPECT_TRUE(spec.Validate().ok());

  spec.closed.outstanding = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.closed.outstanding = 16;

  spec.topology.columns = 4;
  spec.topology.rows = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.topology.rows = 2;
  EXPECT_TRUE(spec.Validate().ok());

  spec.tenants.cpu_bully_threads = -1;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(ScenarioSpecTest, ClientKindNamesRoundTrip) {
  for (ClientKind kind : {ClientKind::kOpenLoop, ClientKind::kClosedLoop}) {
    auto parsed = ParseClientKind(ClientKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseClientKind("half_open").ok());
}

// The serialized form is a plain Autopilot config file: text round trip too.
TEST(ScenarioSpecTest, SurvivesTextSerialization) {
  ScenarioSpec spec;
  spec.name = "text-trip";
  spec.load = FlashCrowdLoad(1500, 6000, 3, 1);
  spec.tenants.cpu_bully_threads = 48;

  auto reparsed_map = ConfigMap::Parse(spec.ToConfigMap().Serialize());
  ASSERT_TRUE(reparsed_map.ok()) << reparsed_map.status().ToString();
  auto parsed = ScenarioSpec::FromConfigMap(*reparsed_map);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->load.kind, LoadShapeKind::kFlashCrowd);
  EXPECT_DOUBLE_EQ(parsed->load.flash_spike_qps, 6000);
  EXPECT_EQ(parsed->tenants.cpu_bully_threads, 48);
}

// --- fault.* namespace ---------------------------------------------------------

TEST(ScenarioSpecTest, FaultPlanRoundTripsThroughScenario) {
  ScenarioSpec spec;
  spec.name = "faulted";
  spec.fault.enabled = true;
  spec.fault.seed = 77;
  spec.fault.events.push_back(FaultEvent{FaultKind::kDiskDegrade, 0, 2.5, 1.5, 12.0});
  spec.fault.events.push_back(FaultEvent{FaultKind::kNodeCrash, 0, 4.0, 0.5, 1.0});

  auto parsed = ScenarioSpec::FromConfigMap(spec.ToConfigMap());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->fault.enabled);
  EXPECT_EQ(parsed->fault.seed, 77u);
  ASSERT_EQ(parsed->fault.events.size(), 2u);
  EXPECT_EQ(parsed->fault.events[0].kind, FaultKind::kDiskDegrade);
  EXPECT_DOUBLE_EQ(parsed->fault.events[0].severity, 12.0);
  EXPECT_EQ(parsed->fault.events[1].kind, FaultKind::kNodeCrash);
  EXPECT_DOUBLE_EQ(parsed->fault.events[1].at_sec, 4.0);
}

TEST(ScenarioSpecTest, DisabledFaultPlanSerializesNoKeys) {
  // The inertness contract starts at the serialization layer: a spec that
  // never mentions faults must not emit fault.* keys (golden configs and
  // digests stay untouched).
  ScenarioSpec spec;
  spec.name = "plain";
  const ConfigMap map = spec.ToConfigMap();
  for (const auto& [key, value] : map.entries()) {
    EXPECT_NE(key.rfind("fault.", 0), 0u) << key << " = " << value;
  }
}

TEST(ScenarioSpecTest, StrayFaultKeysRejected) {
  ConfigMap map;
  map.SetBool("fault.enabld", true);  // typo inside fault.*
  EXPECT_FALSE(ScenarioSpec::FromConfigMap(map).ok());

  ConfigMap empty_events;
  empty_events.SetBool("fault.enabled", true);
  empty_events.SetString("fault.events", "");
  EXPECT_FALSE(ScenarioSpec::FromConfigMap(empty_events).ok());
}

TEST(ScenarioSpecTest, FaultNodeOutsideTopologyRejected) {
  ScenarioSpec spec;  // single box: fault nodes must be 0
  spec.fault.enabled = true;
  spec.fault.events.push_back(FaultEvent{FaultKind::kNodeCrash, 1, 1.0, 1.0, 1.0});
  EXPECT_FALSE(spec.Validate().ok());

  spec.topology = TopologySpec{3, 2, 1};  // 6 index nodes: node 1 is fine now
  EXPECT_TRUE(spec.Validate().ok());
  spec.fault.events[0].node = 6;
  EXPECT_FALSE(spec.Validate().ok());
}

}  // namespace
}  // namespace perfiso
