// Statistical coverage for the load-shape engine: the thinned arrival
// process must actually realize the target intensity. Constant shapes are
// checked to be Poisson at the requested rate (chi-square over per-second
// counts + inter-arrival CV), shaped streams are checked bucket-by-bucket
// against the analytic intensity, and zero-rate windows must be exactly
// silent. All tests run fixed seeds, so thresholds can be tight without
// flaking.
#include "src/workload/load_shape.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

// Runs an open-loop client over `duration` and returns the arrival times.
std::vector<SimTime> CollectArrivals(const LoadShapeSpec& shape, SimDuration duration,
                                     uint64_t seed) {
  Simulator sim;
  Rng trace_rng(1);
  auto trace = GenerateTrace(TraceSpec{}, 100, &trace_rng);
  std::vector<SimTime> arrivals;
  OpenLoopClient client(&sim, std::move(trace), shape, Rng(seed),
                        [&arrivals](const QueryWork&, SimTime now) {
                          arrivals.push_back(now);
                        });
  client.Run(0, duration);
  sim.RunUntilEmpty();
  return arrivals;
}

std::vector<int> Buckets(const std::vector<SimTime>& arrivals, SimDuration bucket,
                         int num_buckets) {
  std::vector<int> counts(static_cast<size_t>(num_buckets), 0);
  for (SimTime t : arrivals) {
    const size_t i = std::min(counts.size() - 1, static_cast<size_t>(t / bucket));
    ++counts[i];
  }
  return counts;
}

TEST(LoadShapeStatsTest, ConstantShapeArrivalsArePoissonAtRequestedRate) {
  const double kRate = 2000;
  const int kBuckets = 20;
  const auto arrivals = CollectArrivals(ConstantLoad(kRate), kBuckets * kSecond, 31);

  // Total count within 4 sigma of rate * T (Poisson sd = sqrt(mean)).
  const double expected = kRate * kBuckets;
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected, 4 * std::sqrt(expected));

  // Chi-square over per-second counts: for Poisson buckets, sum (O-E)^2 / E
  // ~ chi2 with kBuckets - 1 dof (mean 19, 99.9th percentile ~ 43.8).
  const auto counts = Buckets(arrivals, kSecond, kBuckets);
  double chi2 = 0;
  for (int count : counts) {
    chi2 += (count - kRate) * (count - kRate) / kRate;
  }
  EXPECT_LT(chi2, 50.0) << "per-second counts are not Poisson-dispersed";
  EXPECT_GT(chi2, 4.0) << "suspiciously sub-Poisson dispersion";

  // Inter-arrival CV ~ 1 for an exponential gap distribution.
  MeanVar gaps;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gaps.Add(static_cast<double>(arrivals[i] - arrivals[i - 1]));
  }
  EXPECT_NEAR(gaps.StdDev() / gaps.Mean(), 1.0, 0.05);
  // And the mean gap matches the rate.
  EXPECT_NEAR(gaps.Mean(), static_cast<double>(kSecond) / kRate,
              0.05 * static_cast<double>(kSecond) / kRate);
}

TEST(LoadShapeStatsTest, DiurnalThinnedArrivalsMatchIntensityPerBucket) {
  const int kBuckets = 20;
  LoadShapeSpec shape = DiurnalLoad(/*peak_qps=*/3000, /*period_sec=*/20,
                                    /*trough_fraction=*/0.2);
  const auto arrivals = CollectArrivals(shape, kBuckets * kSecond, 47);

  // Each 1-second bucket's count must match the analytic intensity at its
  // midpoint within 5 sigma (the intensity varies slowly across a bucket).
  const auto counts = Buckets(arrivals, kSecond, kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    const double expected = shape.RateAt(i * kSecond + kSecond / 2);
    EXPECT_NEAR(counts[static_cast<size_t>(i)], expected, 5 * std::sqrt(expected) + 3)
        << "bucket " << i;
  }

  // Time-average of the raised cosine: peak * (1 + f) / 2.
  const double mean_rate = 3000 * (1 + 0.2) / 2;
  EXPECT_NEAR(static_cast<double>(arrivals.size()), mean_rate * kBuckets,
              4 * std::sqrt(mean_rate * kBuckets));

  // The trough bucket really is quieter than the peak bucket.
  EXPECT_LT(counts.front(), counts[kBuckets / 2] / 2);
}

TEST(LoadShapeStatsTest, PiecewiseZeroRateWindowsAreExactlySilent) {
  LoadShapeSpec shape;
  shape.kind = LoadShapeKind::kPiecewise;
  shape.piecewise = {{0, 1000}, {2, 0}, {4, 3000}};
  ASSERT_TRUE(shape.Validate().ok());
  const auto arrivals = CollectArrivals(shape, 6 * kSecond, 53);

  const auto counts = Buckets(arrivals, 2 * kSecond, 3);
  EXPECT_NEAR(counts[0], 2000, 5 * std::sqrt(2000.0));
  EXPECT_EQ(counts[1], 0) << "thinning must reject every candidate in a zero-rate window";
  EXPECT_NEAR(counts[2], 6000, 5 * std::sqrt(6000.0));
}

TEST(LoadShapeStatsTest, FlashCrowdSpikeIsConfinedToItsWindow) {
  const auto shape = FlashCrowdLoad(/*base_qps=*/500, /*spike_qps=*/4000,
                                    /*start_sec=*/2, /*duration_sec=*/1);
  const auto arrivals = CollectArrivals(shape, 5 * kSecond, 61);
  const auto counts = Buckets(arrivals, kSecond, 5);
  for (int i : {0, 1, 3, 4}) {
    EXPECT_NEAR(counts[static_cast<size_t>(i)], 500, 5 * std::sqrt(500.0)) << "bucket " << i;
  }
  EXPECT_NEAR(counts[2], 4000, 5 * std::sqrt(4000.0));
}

TEST(LoadShapeStatsTest, RampIntensityClimbsLinearly) {
  LoadShapeSpec shape;
  shape.kind = LoadShapeKind::kRamp;
  shape.qps = 200;
  shape.ramp_end_qps = 2200;
  shape.ramp_duration_sec = 10;
  ASSERT_TRUE(shape.Validate().ok());
  const auto arrivals = CollectArrivals(shape, 10 * kSecond, 71);
  const auto counts = Buckets(arrivals, kSecond, 10);
  for (int i = 0; i < 10; ++i) {
    const double expected = shape.RateAt(i * kSecond + kSecond / 2);
    EXPECT_NEAR(counts[static_cast<size_t>(i)], expected, 5 * std::sqrt(expected) + 3)
        << "bucket " << i;
  }
}

// --- Shape evaluation unit checks -------------------------------------------

TEST(LoadShapeTest, RateAtAndPeakRatePerShape) {
  EXPECT_DOUBLE_EQ(ConstantLoad(1234).RateAt(5 * kSecond), 1234);
  EXPECT_DOUBLE_EQ(ConstantLoad(1234).PeakRate(), 1234);

  const LoadShapeSpec diurnal = DiurnalLoad(1000, 10, 0.25);
  EXPECT_DOUBLE_EQ(diurnal.RateAt(0), 250);            // trough at t=0
  EXPECT_DOUBLE_EQ(diurnal.RateAt(5 * kSecond), 1000); // peak mid-period
  EXPECT_DOUBLE_EQ(diurnal.PeakRate(), 1000);

  LoadShapeSpec square;
  square.kind = LoadShapeKind::kSquareWave;
  square.qps = 100;
  square.square_burst_qps = 900;
  square.square_period_sec = 4;
  square.square_duty = 0.25;
  EXPECT_DOUBLE_EQ(square.RateAt(0), 900);             // burst leads the period
  EXPECT_DOUBLE_EQ(square.RateAt(2 * kSecond), 100);
  EXPECT_DOUBLE_EQ(square.RateAt(4 * kSecond), 900);   // wraps
  EXPECT_DOUBLE_EQ(square.PeakRate(), 900);

  LoadShapeSpec ramp;
  ramp.kind = LoadShapeKind::kRamp;
  ramp.qps = 100;
  ramp.ramp_end_qps = 1100;
  ramp.ramp_duration_sec = 10;
  EXPECT_DOUBLE_EQ(ramp.RateAt(0), 100);
  EXPECT_DOUBLE_EQ(ramp.RateAt(5 * kSecond), 600);
  EXPECT_DOUBLE_EQ(ramp.RateAt(20 * kSecond), 1100);   // clamps after the ramp
  EXPECT_DOUBLE_EQ(ramp.PeakRate(), 1100);

  LoadShapeSpec piecewise;
  piecewise.kind = LoadShapeKind::kPiecewise;
  piecewise.piecewise = {{0, 10}, {1, 30}, {5, 20}};
  EXPECT_DOUBLE_EQ(piecewise.RateAt(0), 10);
  EXPECT_DOUBLE_EQ(piecewise.RateAt(3 * kSecond), 30);
  EXPECT_DOUBLE_EQ(piecewise.RateAt(7 * kSecond), 20);
  EXPECT_DOUBLE_EQ(piecewise.PeakRate(), 30);
}

TEST(LoadShapeTest, ValidateRejectsBadShapes) {
  EXPECT_FALSE(ConstantLoad(-1).Validate().ok());
  EXPECT_FALSE(ConstantLoad(0).Validate().ok());

  // inf/NaN would wedge the thinning loop (one arrival per tick) or slip
  // through one-sided range checks; they must be rejected up front.
  EXPECT_FALSE(ConstantLoad(std::numeric_limits<double>::infinity()).Validate().ok());
  EXPECT_FALSE(ConstantLoad(std::numeric_limits<double>::quiet_NaN()).Validate().ok());
  {
    LoadShapeSpec nan_time;
    nan_time.kind = LoadShapeKind::kPiecewise;
    nan_time.piecewise = {{std::numeric_limits<double>::quiet_NaN(), 100}};
    EXPECT_FALSE(nan_time.Validate().ok());
  }

  LoadShapeSpec diurnal = DiurnalLoad(1000, 0);
  EXPECT_FALSE(diurnal.Validate().ok());  // zero period
  diurnal = DiurnalLoad(1000, 10, 1.5);
  EXPECT_FALSE(diurnal.Validate().ok());  // trough fraction > 1

  LoadShapeSpec square;
  square.kind = LoadShapeKind::kSquareWave;
  square.square_duty = 0;
  EXPECT_FALSE(square.Validate().ok());
  square.square_duty = 1;
  EXPECT_FALSE(square.Validate().ok());

  LoadShapeSpec piecewise;
  piecewise.kind = LoadShapeKind::kPiecewise;
  EXPECT_FALSE(piecewise.Validate().ok());  // empty table
  piecewise.piecewise = {{0, 100}, {0, 200}};
  EXPECT_FALSE(piecewise.Validate().ok());  // non-increasing times
  piecewise.piecewise = {{0, -5}};
  EXPECT_FALSE(piecewise.Validate().ok());  // negative rate
  piecewise.piecewise = {{0, 0}, {1, 0}};
  EXPECT_FALSE(piecewise.Validate().ok());  // never positive
  piecewise.piecewise = {{0, 100}, {1, 0}};
  EXPECT_TRUE(piecewise.Validate().ok());

  LoadShapeSpec flash = FlashCrowdLoad(100, -1, 0, 1);
  EXPECT_FALSE(flash.Validate().ok());
  flash = FlashCrowdLoad(100, 400, 1, 0);
  EXPECT_FALSE(flash.Validate().ok());  // zero-length spike
}

TEST(LoadShapeTest, KindNamesRoundTrip) {
  for (LoadShapeKind kind :
       {LoadShapeKind::kConstant, LoadShapeKind::kDiurnal, LoadShapeKind::kRamp,
        LoadShapeKind::kFlashCrowd, LoadShapeKind::kSquareWave, LoadShapeKind::kPiecewise}) {
    auto parsed = ParseLoadShapeKind(LoadShapeKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseLoadShapeKind("sawtooth").ok());
}

}  // namespace
}  // namespace perfiso
