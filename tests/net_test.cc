#include "src/net/fabric.h"

#include <gtest/gtest.h>

#include "src/net/netdev.h"
#include "src/platform/sim_platform.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"
#include "src/util/token_bucket.h"
#include "src/workload/bullies.h"

namespace perfiso {
namespace {

// 100 MB/s links keep the arithmetic exact: a 64 KB chunk serializes in
// exactly 655,360 ns.
FabricConfig TestConfig() {
  FabricConfig config;
  config.link_rate_bps = 1e8;
  config.uplink_oversubscription = 4.0;
  config.machines_per_rack = 64;  // single rack unless a test says otherwise
  config.base_latency = FromMicros(100);
  config.chunk_bytes = 64 * 1024;
  return config;
}

TEST(NetTest, ConfigValidateAcceptsDefaultsAndTestConfig) {
  EXPECT_TRUE(FabricConfig{}.Validate().ok());
  EXPECT_TRUE(TestConfig().Validate().ok());
}

TEST(NetTest, ConfigValidateRejectsNonPositiveBaseLatency) {
  // Zero propagation delay would also be a zero PDES lookahead: the
  // partitioned engine's lockstep windows would have zero width and the
  // window loop would never advance. Validate must reject it up front.
  FabricConfig config = TestConfig();
  config.base_latency = 0;
  Status status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("base_latency"), std::string::npos);
  config.base_latency = -FromMicros(1);
  EXPECT_FALSE(config.Validate().ok());
}

TEST(NetTest, ConfigValidateRejectsOtherNonPhysicalSettings) {
  {
    FabricConfig config = TestConfig();
    config.link_rate_bps = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    FabricConfig config = TestConfig();
    config.uplink_oversubscription = 0.5;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    FabricConfig config = TestConfig();
    config.machines_per_rack = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    FabricConfig config = TestConfig();
    config.chunk_bytes = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    FabricConfig config = TestConfig();
    config.request_bytes = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
}

TEST(NetTest, UncontendedFlowPaysSerializationAndPropagation) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  fabric.AttachMachine("a");
  fabric.AttachMachine("b");
  SimTime delivered = -1;
  fabric.Send(0, 1, 1024 * 1024, NetClass::kPrimary, [&](SimTime now) { delivered = now; });
  sim.RunUntilEmpty();
  // 1 MiB serializes in 1048576/1e8 s = ~10.49 ms at TX and again at RX,
  // plus the one-way base latency. Intra-rack, so no uplink hop.
  const auto serialize = static_cast<SimDuration>(1024 * 1024 / 1e8 * kSecond);
  const SimTime expected = 2 * serialize + FromMicros(100);
  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(fabric.flows_in_flight(), 0);
  EXPECT_EQ(fabric.endpoint_stats(1).flows_delivered[0], 1);
  EXPECT_EQ(fabric.endpoint_stats(0).bytes_sent[0], 1024 * 1024);
}

TEST(NetTest, LoopbackSkipsTheNic) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  fabric.AttachMachine("a");
  SimTime delivered = -1;
  fabric.Send(0, 0, 1024 * 1024, NetClass::kPrimary, [&](SimTime now) { delivered = now; });
  sim.RunUntilEmpty();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(fabric.netdev(0).tx().stats().bytes_serialized[0], 0);
}

TEST(NetTest, PrimaryPreemptsSecondaryInTxQueues) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  fabric.AttachMachine("a");
  fabric.AttachMachine("b");
  SimTime secondary_done = -1;
  SimTime primary_done = -1;
  // The bulk secondary flow is already serializing when the primary RPC
  // arrives; the RPC waits at most one chunk, not 10 MB.
  fabric.Send(0, 1, 10 * 1024 * 1024, NetClass::kSecondary,
              [&](SimTime now) { secondary_done = now; });
  fabric.Send(0, 1, 16 * 1024, NetClass::kPrimary, [&](SimTime now) { primary_done = now; });
  sim.RunUntilEmpty();
  ASSERT_GT(primary_done, 0);
  ASSERT_GT(secondary_done, 0);
  EXPECT_LT(primary_done, secondary_done);
  // One 64 KB chunk in front (655 us) + own TX + base + RX: well under 2 ms.
  EXPECT_LT(primary_done, FromMillis(2));
  EXPECT_GT(secondary_done, FromMillis(100));  // 10 MB twice at 100 MB/s
}

TEST(NetTest, FifoTxHeadOfLineBlocksWithoutPriorityClasses) {
  Simulator sim;
  FabricConfig config = TestConfig();
  config.tx_priority = false;
  Fabric fabric(&sim, config);
  fabric.AttachMachine("a");
  fabric.AttachMachine("b");
  SimTime primary_done = -1;
  fabric.Send(0, 1, 10 * 1024 * 1024, NetClass::kSecondary, nullptr);
  fabric.Send(0, 1, 16 * 1024, NetClass::kPrimary, [&](SimTime now) { primary_done = now; });
  sim.RunUntilEmpty();
  // The RPC sits behind the whole 10 MB block: > 100 ms instead of < 2 ms.
  EXPECT_GT(primary_done, FromMillis(100));
}

TEST(NetTest, SecondaryChunksDrainTheEgressBucket) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  fabric.AttachMachine("a");
  fabric.AttachMachine("b");
  TokenBucket bucket(1e6, 0.25e6);  // 1 MB/s cap, 250 KB burst
  fabric.SetEgressBucketProvider(0, [&bucket]() { return &bucket; });
  SimTime secondary_done = -1;
  SimTime primary_done = -1;
  fabric.Send(0, 1, 500 * 1024, NetClass::kSecondary,
              [&](SimTime now) { secondary_done = now; });
  fabric.Send(0, 1, 500 * 1024, NetClass::kPrimary, [&](SimTime now) { primary_done = now; });
  sim.RunUntilEmpty();
  // The burst covers half the secondary flow; the rest trickles at 1 MB/s:
  // (512000 - 256000) / 1e6 = ~0.26 s, dwarfing serialization.
  EXPECT_GT(secondary_done, FromMillis(200));
  EXPECT_LT(secondary_done, FromMillis(400));
  // Primary traffic is never shaped.
  EXPECT_LT(primary_done, FromMillis(15));
}

TEST(NetTest, TinyEgressBurstStillMakesProgress) {
  // Regression: a bucket whose burst is smaller than chunk_bytes (here 50 KB
  // vs 64 KB) must shape in smaller chunks, not livelock waiting for tokens
  // that can never accumulate.
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  fabric.AttachMachine("a");
  fabric.AttachMachine("b");
  TokenBucket bucket(200e3, 50e3);
  fabric.SetEgressBucketProvider(0, [&bucket]() { return &bucket; });
  SimTime delivered = -1;
  fabric.Send(0, 1, 128 * 1024, NetClass::kSecondary, [&](SimTime now) { delivered = now; });
  sim.RunUntilEmpty();
  ASSERT_GT(delivered, 0);
  // ~(131072 - 50000) / 200e3 = ~0.4 s of trickle after the initial burst.
  EXPECT_GT(delivered, FromMillis(300));
  EXPECT_LT(delivered, FromMillis(700));
}

TEST(NetTest, PlatformEgressCapShapesFabricFlows) {
  // End-to-end plumbing: PerfIso's SetEgressRateCap installs the bucket that
  // the machine's NIC consults, and clearing the cap unshapes new flows.
  Simulator sim;
  MachineSpec spec;
  SimMachine machine(&sim, spec, "m0");
  SimPlatform platform(&machine, nullptr);
  Fabric fabric(&sim, TestConfig());
  fabric.AttachMachine("m0");
  fabric.AttachMachine("peer");
  fabric.SetEgressBucketProvider(0, [&platform]() { return platform.egress_bucket(); });

  ASSERT_TRUE(platform.SetEgressRateCap(1e6).ok());
  SimTime capped_done = -1;
  fabric.Send(0, 1, 1024 * 1024, NetClass::kSecondary, [&](SimTime now) { capped_done = now; });
  sim.RunUntilEmpty();
  EXPECT_GT(capped_done, FromMillis(700));  // ~(1 MB - burst) at 1 MB/s

  ASSERT_TRUE(platform.SetEgressRateCap(0).ok());
  const SimTime start = sim.Now();
  SimTime uncapped_done = -1;
  fabric.Send(0, 1, 1024 * 1024, NetClass::kSecondary,
              [&](SimTime now) { uncapped_done = now; });
  sim.RunUntilEmpty();
  EXPECT_LT(uncapped_done - start, FromMillis(25));  // pure serialization again
}

TEST(NetTest, FanInBecomesIncastAtTheReceiverRxLink) {
  Simulator sim;
  Fabric fabric(&sim, TestConfig());
  const int kSenders = 8;
  fabric.AttachMachine("agg");
  for (int i = 0; i < kSenders; ++i) {
    fabric.AttachMachine("leaf" + std::to_string(i));
  }
  int delivered = 0;
  SimTime last = 0;
  for (int i = 1; i <= kSenders; ++i) {
    fabric.Send(i, 0, 256 * 1024, NetClass::kPrimary, [&](SimTime now) {
      ++delivered;
      last = now;
    });
  }
  sim.RunUntilEmpty();
  EXPECT_EQ(delivered, kSenders);
  // All eight 256 KB responses serialize in parallel at their own TX links
  // (~2.6 ms), converge, and then share the aggregator's one RX link:
  // 2 MB at 100 MB/s = 20 ms of serialization for the last response.
  EXPECT_GT(last, FromMillis(20));
  // The backlog gauge saw most of the convergence queued at once.
  EXPECT_GT(fabric.netdev(0).rx().stats().max_queued_bytes, 3 * 256 * 1024);
  EXPECT_EQ(fabric.netdev(0).rx().stats().flows_completed[0], kSenders);
}

TEST(NetTest, CrossRackFlowsShareTheOversubscribedUplink) {
  Simulator sim;
  FabricConfig config = TestConfig();
  config.machines_per_rack = 2;  // endpoints {0,1} rack 0, {2,3} rack 1
  Fabric fabric(&sim, config);
  for (int i = 0; i < 4; ++i) {
    fabric.AttachMachine("m" + std::to_string(i));
  }
  ASSERT_EQ(fabric.num_racks(), 2);

  SimTime intra_done = -1;
  fabric.Send(0, 1, 1024 * 1024, NetClass::kPrimary, [&](SimTime now) { intra_done = now; });
  sim.RunUntilEmpty();
  EXPECT_EQ(fabric.rack_uplink(0).stats().bytes_serialized[0], 0);

  const SimTime start = sim.Now();
  SimTime cross_done = -1;
  fabric.Send(0, 3, 1024 * 1024, NetClass::kPrimary, [&](SimTime now) { cross_done = now; });
  sim.RunUntilEmpty();
  EXPECT_EQ(fabric.rack_uplink(0).stats().bytes_serialized[0], 1024 * 1024);
  EXPECT_EQ(fabric.rack_downlink(1).stats().bytes_serialized[0], 1024 * 1024);
  // Uplinks run at 2 * 100 MB/s / 4 = 50 MB/s: two extra 20 ms store-and-
  // forward hops make the cross-rack transfer much slower than intra-rack.
  EXPECT_GT(cross_done - start, intra_done + FromMillis(35));
}

TEST(NetTest, NetworkBullyThroughputHeldAtTheEgressCap) {
  Simulator sim;
  MachineSpec spec;
  spec.num_cores = 4;
  SimMachine machine(&sim, spec, "bully-host");
  SimPlatform platform(&machine, nullptr);
  JobId job = machine.CreateJob("secondary");
  platform.AddSecondaryJob(job);

  Fabric fabric(&sim, TestConfig());
  fabric.AttachMachine("bully-host");
  fabric.AttachMachine("peer1");
  fabric.AttachMachine("peer2");
  fabric.SetEgressBucketProvider(0, [&platform]() { return platform.egress_bucket(); });

  NetworkBully::Options options;
  options.block_bytes = 256 * 1024;
  options.streams = 2;
  options.peers = {1, 2};
  NetworkBully bully(&sim, &machine, &fabric, 0, job, options, Rng(7));
  bully.Start();

  const double cap = 5e6;  // 5 MB/s out of a 100 MB/s NIC
  ASSERT_TRUE(platform.SetEgressRateCap(cap).ok());
  sim.RunUntil(4 * kSecond);
  bully.Stop();
  const double achieved = bully.AchievedBps(0, sim.Now(), 0);
  // Token burst (cap/4) pads the start; stay within ~±25% of the cap.
  EXPECT_GT(achieved, 0.75 * cap);
  EXPECT_LT(achieved, 1.35 * cap);
  // Everything the bully put on the wire was secondary-class.
  EXPECT_EQ(fabric.netdev(0).tx().stats().bytes_serialized[0], 0);
  EXPECT_GT(fabric.netdev(0).tx().stats().bytes_serialized[1], 0);
}

}  // namespace
}  // namespace perfiso
