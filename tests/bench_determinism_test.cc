// Determinism contract of the simulation + the parallel bench runner: a
// scenario's result is a pure function of its inputs. The same scenario run
// twice — or through RunScenarios() on worker threads — must produce
// bit-identical metric rows, event counts, and latency-recorder digests.
// fig09/fig10-style reference-tolerance checks only make sense on top of
// this.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/cluster/cluster.h"
#include "src/sim/simulator.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

using bench::RunParallel;
using bench::RunScenarios;
using bench::RunSingleBox;
using bench::SingleBoxResult;
using bench::SingleBoxScenario;

// Every metric compared with exact equality: these are doubles produced by
// deterministic integer-time simulation, so reruns must match to the bit.
void ExpectIdentical(const SingleBoxResult& a, const SingleBoxResult& b,
                     const std::string& what) {
  EXPECT_EQ(a.p50_ms, b.p50_ms) << what;
  EXPECT_EQ(a.p95_ms, b.p95_ms) << what;
  EXPECT_EQ(a.p99_ms, b.p99_ms) << what;
  EXPECT_EQ(a.mean_ms, b.mean_ms) << what;
  EXPECT_EQ(a.drop_fraction, b.drop_fraction) << what;
  EXPECT_EQ(a.primary_util, b.primary_util) << what;
  EXPECT_EQ(a.secondary_util, b.secondary_util) << what;
  EXPECT_EQ(a.os_util, b.os_util) << what;
  EXPECT_EQ(a.idle_fraction, b.idle_fraction) << what;
  EXPECT_EQ(a.secondary_progress, b.secondary_progress) << what;
  EXPECT_EQ(a.hedges, b.hedges) << what;
  EXPECT_EQ(a.queries, b.queries) << what;
}

SingleBoxScenario Fig04Style(double qps, int bully_threads) {
  SingleBoxScenario scenario;
  scenario.qps = qps;
  scenario.cpu_bully_threads = bully_threads;
  scenario.measure = kSecond;  // keep the test quick; shape matches fig04
  return scenario;
}

TEST(BenchDeterminismTest, Fig04StyleScenarioIsBitIdenticalAcrossRuns) {
  const SingleBoxScenario scenario = Fig04Style(2000, 24);
  const SingleBoxResult first = RunSingleBox(scenario);
  const SingleBoxResult second = RunSingleBox(scenario);
  ExpectIdentical(first, second, "sequential rerun");
}

TEST(BenchDeterminismTest, ParallelRunnerMatchesSequentialBitExactly) {
  std::vector<SingleBoxScenario> scenarios = {
      Fig04Style(2000, 0),
      Fig04Style(2000, 24),
      Fig04Style(4000, 48),
  };

  // Force real worker threads even on single-core CI, then a sequential pass.
  ASSERT_EQ(setenv("PERFISO_BENCH_THREADS", "4", 1), 0);
  const std::vector<SingleBoxResult> parallel = RunScenarios(scenarios);
  ASSERT_EQ(setenv("PERFISO_BENCH_THREADS", "1", 1), 0);
  const std::vector<SingleBoxResult> sequential = RunScenarios(scenarios);
  ASSERT_EQ(unsetenv("PERFISO_BENCH_THREADS"), 0);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < parallel.size(); ++i) {
    ExpectIdentical(parallel[i], sequential[i], "row " + std::to_string(i));
  }
}

struct ClusterDigest {
  uint64_t events = 0;
  uint64_t leaf = 0;
  uint64_t mla = 0;
  uint64_t tla = 0;
  int64_t completed = 0;

  bool operator==(const ClusterDigest&) const = default;
};

// A miniature fig09: a cluster with HDFS + CPU bully + PerfIso per node,
// digested down to event counts and latency-recorder digests.
ClusterDigest RunFig09Style() {
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{2, 1, 2};
  Cluster cluster(&sim, options);
  cluster.ForEachIndexNode([&](IndexNodeRig& node) {
    node.StartHdfsClient(HdfsClient::Options{});
    node.StartCpuBully(48);
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kBlindIsolation;
    config.blind.buffer_cores = 8;
    Status status = node.StartPerfIso(config);
    if (!status.ok()) {
      ADD_FAILURE() << status.ToString();
    }
  });

  Rng trace_rng(4242);
  auto trace = GenerateTrace(TraceSpec{}, 2000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/800, Rng(9),
                        [&cluster](const QueryWork& work, SimTime) {
                          cluster.SubmitQuery(work);
                        });
  client.Run(0, 2 * kSecond);
  sim.RunUntil(2 * kSecond);

  ClusterDigest digest;
  digest.events = sim.EventsExecuted();
  digest.leaf = cluster.MergedLeafLatency().Digest();
  digest.mla = cluster.MlaLatency().Digest();
  digest.tla = cluster.TlaLatency().Digest();
  digest.completed = cluster.queries_completed();
  return digest;
}

TEST(BenchDeterminismTest, Fig09StyleClusterDigestsAreIdentical) {
  const ClusterDigest first = RunFig09Style();
  const ClusterDigest second = RunFig09Style();
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.leaf, second.leaf);
  EXPECT_EQ(first.mla, second.mla);
  EXPECT_EQ(first.tla, second.tla);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_GT(first.completed, 0);

  // The cluster digest must also be stable when computed on worker threads
  // next to another simulation (no hidden shared state between Simulators).
  ASSERT_EQ(setenv("PERFISO_BENCH_THREADS", "2", 1), 0);
  const std::vector<ClusterDigest> parallel = RunParallel<ClusterDigest>({
      [] { return RunFig09Style(); },
      [] { return RunFig09Style(); },
  });
  ASSERT_EQ(unsetenv("PERFISO_BENCH_THREADS"), 0);
  EXPECT_EQ(parallel[0], first);
  EXPECT_EQ(parallel[1], first);
}

}  // namespace
}  // namespace perfiso
