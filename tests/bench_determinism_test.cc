// Determinism contract of the simulation + the parallel bench runner: a
// scenario's result is a pure function of its inputs. The same scenario run
// twice — or through RunScenarios() on worker threads — must produce
// bit-identical metric rows, event counts, and latency-recorder digests.
// fig09/fig10-style reference-tolerance checks only make sense on top of
// this.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/cluster/cluster.h"
#include "src/sim/simulator.h"
#include "src/workload/query_trace.h"

namespace perfiso {
namespace {

using bench::RunParallel;
using bench::RunScenarios;
using bench::RunSingleBox;
using bench::SingleBoxResult;
using bench::SingleBoxScenario;

// Every metric compared with exact equality: these are doubles produced by
// deterministic integer-time simulation, so reruns must match to the bit.
void ExpectIdentical(const SingleBoxResult& a, const SingleBoxResult& b,
                     const std::string& what) {
  EXPECT_EQ(a.p50_ms, b.p50_ms) << what;
  EXPECT_EQ(a.p95_ms, b.p95_ms) << what;
  EXPECT_EQ(a.p99_ms, b.p99_ms) << what;
  EXPECT_EQ(a.mean_ms, b.mean_ms) << what;
  EXPECT_EQ(a.drop_fraction, b.drop_fraction) << what;
  EXPECT_EQ(a.primary_util, b.primary_util) << what;
  EXPECT_EQ(a.secondary_util, b.secondary_util) << what;
  EXPECT_EQ(a.os_util, b.os_util) << what;
  EXPECT_EQ(a.idle_fraction, b.idle_fraction) << what;
  EXPECT_EQ(a.secondary_progress, b.secondary_progress) << what;
  EXPECT_EQ(a.hedges, b.hedges) << what;
  EXPECT_EQ(a.queries, b.queries) << what;
  EXPECT_EQ(a.latency_digest, b.latency_digest) << what;
}

SingleBoxScenario Fig04Style(double qps, int bully_threads) {
  SingleBoxScenario scenario;
  scenario.load = ConstantLoad(qps);
  scenario.tenants.cpu_bully_threads = bully_threads;
  scenario.measure = kSecond;  // keep the test quick; shape matches fig04
  return scenario;
}

// Restores an environment variable on scope exit, so a mid-test ASSERT
// cannot leak a pinned value into later tests in the binary (and a caller's
// own setting survives the test).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    old_value_ = had_old_ ? old : "";
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_value_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_value_;
};

TEST(BenchDeterminismTest, Fig04StyleScenarioIsBitIdenticalAcrossRuns) {
  const SingleBoxScenario scenario = Fig04Style(2000, 24);
  const SingleBoxResult first = RunSingleBox(scenario);
  const SingleBoxResult second = RunSingleBox(scenario);
  ExpectIdentical(first, second, "sequential rerun");
}

TEST(BenchDeterminismTest, ParallelRunnerMatchesSequentialBitExactly) {
  std::vector<SingleBoxScenario> scenarios = {
      Fig04Style(2000, 0),
      Fig04Style(2000, 24),
      Fig04Style(4000, 48),
  };

  // Force real worker threads even on single-core CI, then a sequential pass.
  ASSERT_EQ(setenv("PERFISO_BENCH_THREADS", "4", 1), 0);
  const std::vector<SingleBoxResult> parallel = RunScenarios(scenarios);
  ASSERT_EQ(setenv("PERFISO_BENCH_THREADS", "1", 1), 0);
  const std::vector<SingleBoxResult> sequential = RunScenarios(scenarios);
  ASSERT_EQ(unsetenv("PERFISO_BENCH_THREADS"), 0);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < parallel.size(); ++i) {
    ExpectIdentical(parallel[i], sequential[i], "row " + std::to_string(i));
  }
}

struct ClusterDigest {
  uint64_t events = 0;
  uint64_t leaf = 0;
  uint64_t mla = 0;
  uint64_t tla = 0;
  int64_t completed = 0;

  bool operator==(const ClusterDigest&) const = default;
};

// A miniature fig09: a cluster with HDFS + CPU bully + PerfIso per node,
// digested down to event counts and latency-recorder digests.
ClusterDigest RunFig09Style() {
  Simulator sim;
  ClusterOptions options;
  options.topology = ClusterTopology{2, 1, 2};
  Cluster cluster(&sim, options);
  cluster.ForEachIndexNode([&](IndexNodeRig& node) {
    node.StartHdfsClient(HdfsClient::Options{});
    node.StartCpuBully(48);
    PerfIsoConfig config;
    config.cpu_mode = CpuIsolationMode::kBlindIsolation;
    config.blind.buffer_cores = 8;
    Status status = node.StartPerfIso(config);
    if (!status.ok()) {
      ADD_FAILURE() << status.ToString();
    }
  });

  Rng trace_rng(4242);
  auto trace = GenerateTrace(TraceSpec{}, 2000, &trace_rng);
  OpenLoopClient client(&sim, std::move(trace), /*qps=*/800, Rng(9),
                        [&cluster](const QueryWork& work, SimTime) {
                          cluster.SubmitQuery(work);
                        });
  client.Run(0, 2 * kSecond);
  sim.RunUntil(2 * kSecond);

  ClusterDigest digest;
  digest.events = sim.EventsExecuted();
  digest.leaf = cluster.MergedLeafLatency().Digest();
  digest.mla = cluster.MlaLatency().Digest();
  digest.tla = cluster.TlaLatency().Digest();
  digest.completed = cluster.queries_completed();
  return digest;
}

// The load-shape engine rides the same contract: shaped (thinned) arrival
// streams and the closed-loop client are pure functions of the spec, so
// registry scenarios run bit-identically on worker threads too. Run at a
// reduced bench scale so ScaleScenarioForBench's timeline compression (the
// spike, the bursts, the full diurnal period — all inside a ~1 s window) is
// on the tested path.
TEST(BenchDeterminismTest, ShapedScenariosParallelMatchesSequential) {
  const char* kNames[] = {"diurnal-blind", "flash-crowd-no-isolation",
                          "burst-train-blind", "closed-loop-saturation"};
  std::vector<SingleBoxScenario> scenarios;
  for (const char* name : kNames) {
    auto spec = bench::FindScenario(name);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    scenarios.push_back(*spec);
  }

  const ScopedEnv scale_guard("PERFISO_BENCH_SCALE", "0.05");
  const ScopedEnv threads_guard("PERFISO_BENCH_THREADS", "4");
  const std::vector<SingleBoxResult> parallel = RunScenarios(scenarios);
  ASSERT_EQ(setenv("PERFISO_BENCH_THREADS", "1", 1), 0);
  const std::vector<SingleBoxResult> sequential = RunScenarios(scenarios);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < parallel.size(); ++i) {
    ExpectIdentical(parallel[i], sequential[i], kNames[i]);
    EXPECT_GT(parallel[i].queries, 0) << kNames[i];
  }
}

// --- Golden digests ----------------------------------------------------------
//
// Two named scenarios pinned at fixed seed/scale: a workload refactor that
// silently changes simulation results (instead of just restructuring code)
// trips these, because the latency digest hashes every sample in order.
//
// Update procedure (ONLY when a results-affecting change is intended, and
// say so in the commit message):
//   PERFISO_UPDATE_GOLDENS=1 ./bench_determinism_test \
//       --gtest_filter='*PinnedScenario*'
// prints the new table; paste it over kGoldens below. The values depend on
// libm (exp/log/cos in the RNG and load shapes), so they are tied to the
// toolchain the suite runs on; a digest mismatch after a compiler/libc bump
// with no simulation change is update-worthy, not a regression.
struct Golden {
  const char* scenario;
  uint64_t digest;
  int64_t queries;
};

constexpr Golden kGoldens[] = {
    {"diurnal-blind", 0x6a520f8c86032a81ULL, 2386},
    {"flash-crowd-no-isolation", 0x2f584ed6577403cfULL, 8907},
};

TEST(GoldenDigestTest, PinnedScenarioDigests) {
  // Fixed scale regardless of the caller's bench environment.
  const ScopedEnv scale_guard("PERFISO_BENCH_SCALE", "1");

  const bool update = std::getenv("PERFISO_UPDATE_GOLDENS") != nullptr;
  for (const Golden& golden : kGoldens) {
    auto spec = bench::FindScenario(golden.scenario);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    spec->measure = 3 * kSecond;  // fixed, fast window (flash spike at t=3s is inside)
    const SingleBoxResult result = RunSingleBox(*spec);
    if (update) {
      std::printf("    {\"%s\", 0x%016llxULL, %lld},\n", golden.scenario,
                  static_cast<unsigned long long>(result.latency_digest),
                  static_cast<long long>(result.queries));
      continue;
    }
    EXPECT_EQ(result.latency_digest, golden.digest)
        << golden.scenario << ": digest changed — a workload refactor altered "
        << "simulation results (see the update procedure above)";
    EXPECT_EQ(result.queries, golden.queries) << golden.scenario;
  }
}

// The observability subsystem is contractually passive: with tracing and
// metrics enabled at FULL sampling (every query retained, sampler ticking),
// the pinned goldens must still match bit-for-bit. The tracer never draws
// from simulation RNG streams and the sampler only reads metric state, so
// turning obs on cannot move a single sample.
TEST(GoldenDigestTest, FullSamplingObservabilityLeavesDigestsUnchanged) {
  const ScopedEnv scale_guard("PERFISO_BENCH_SCALE", "1");
  for (const Golden& golden : kGoldens) {
    auto spec = bench::FindScenario(golden.scenario);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    spec->measure = 3 * kSecond;
    spec->obs.enabled = true;
    spec->obs.sampling = TraceSampling::kAll;
    bench::ObsArtifacts obs;
    const SingleBoxResult result = RunSingleBox(*spec, {}, &obs);
    EXPECT_EQ(result.latency_digest, golden.digest)
        << golden.scenario << ": enabling observability changed simulation "
        << "results — the tracer/sampler must stay passive (DESIGN.md §7)";
    EXPECT_EQ(result.queries, golden.queries) << golden.scenario;
    // And the run actually produced artifacts (obs was not silently off).
    EXPECT_TRUE(obs.enabled);
    EXPECT_NE(obs.trace_json.find("\"traceEvents\""), std::string::npos);
    EXPECT_FALSE(obs.attribution.empty());
    EXPECT_NE(obs.metrics_json.find("\"series\""), std::string::npos);
  }
}

// The fault subsystem is contractually inert while disabled (DESIGN.md §8):
// with the fault plan left disabled — even with a different fault seed and a
// staged (but disabled) event list — the pinned goldens must match
// bit-for-bit. No RNG stream forks, no event is scheduled, and the retry /
// degradation paths in the server are fully gated.
TEST(GoldenDigestTest, DisabledFaultPlanLeavesDigestsUnchanged) {
  const ScopedEnv scale_guard("PERFISO_BENCH_SCALE", "1");
  for (const Golden& golden : kGoldens) {
    auto spec = bench::FindScenario(golden.scenario);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    spec->measure = 3 * kSecond;
    spec->fault.enabled = false;  // explicit, with non-default fields staged
    spec->fault.seed = 0xdeadbeef;
    spec->fault.events.push_back(
        FaultEvent{FaultKind::kNodeCrash, 0, /*at_sec=*/1.5, /*duration_sec=*/1.0, 1.0});
    const SingleBoxResult result = RunSingleBox(*spec);
    EXPECT_EQ(result.latency_digest, golden.digest)
        << golden.scenario << ": a disabled fault plan changed simulation "
        << "results — the fault subsystem must be inert when off (DESIGN.md §8)";
    EXPECT_EQ(result.queries, golden.queries) << golden.scenario;
    EXPECT_EQ(result.faults_injected, 0);
    EXPECT_EQ(result.dropped_crash, 0);
  }
}

TEST(BenchDeterminismTest, Fig09StyleClusterDigestsAreIdentical) {
  const ClusterDigest first = RunFig09Style();
  const ClusterDigest second = RunFig09Style();
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.leaf, second.leaf);
  EXPECT_EQ(first.mla, second.mla);
  EXPECT_EQ(first.tla, second.tla);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_GT(first.completed, 0);

  // The cluster digest must also be stable when computed on worker threads
  // next to another simulation (no hidden shared state between Simulators).
  ASSERT_EQ(setenv("PERFISO_BENCH_THREADS", "2", 1), 0);
  const std::vector<ClusterDigest> parallel = RunParallel<ClusterDigest>({
      [] { return RunFig09Style(); },
      [] { return RunFig09Style(); },
  });
  ASSERT_EQ(unsetenv("PERFISO_BENCH_THREADS"), 0);
  EXPECT_EQ(parallel[0], first);
  EXPECT_EQ(parallel[1], first);
}

}  // namespace
}  // namespace perfiso
