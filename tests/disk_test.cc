#include "src/disk/disk.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace perfiso {
namespace {

TEST(DiskDeviceTest, ServiceTimeComposition) {
  Simulator sim;
  DiskSpec spec;
  spec.read_latency = FromMicros(100);
  spec.write_latency = FromMicros(50);
  spec.seek_penalty = FromMillis(5);
  spec.bandwidth_bps = 1e9;  // 1 GB/s -> 64 KB transfers in 65.536 us
  spec.concurrency = 1;
  DiskDevice device(&sim, spec, "d0");

  IoRequest sequential_read;
  sequential_read.op = IoOp::kRead;
  sequential_read.bytes = 64 * 1024;
  sequential_read.sequential = true;
  EXPECT_EQ(device.ServiceTime(sequential_read), FromMicros(100) + 65536);

  IoRequest random_write = sequential_read;
  random_write.op = IoOp::kWrite;
  random_write.sequential = false;
  EXPECT_EQ(device.ServiceTime(random_write), FromMicros(50) + FromMillis(5) + 65536);
}

TEST(DiskDeviceTest, CompletionCallbackAtServiceTime) {
  Simulator sim;
  DiskSpec spec = DiskSpec::Ssd();
  DiskDevice device(&sim, spec, "d0");
  IoRequest request;
  request.op = IoOp::kRead;
  request.bytes = 4096;
  request.sequential = false;
  SimTime done_at = -1;
  request.on_complete = [&](SimTime now) { done_at = now; };
  device.Submit(std::move(request));
  sim.RunUntilEmpty();
  EXPECT_EQ(done_at, device.ServiceTime(IoRequest{0, IoOp::kRead, 4096, false, nullptr, 0}));
  EXPECT_EQ(device.CompletedOps(), 1);
  EXPECT_EQ(device.CompletedBytes(), 4096);
}

TEST(DiskDeviceTest, ConcurrencyLimitQueues) {
  Simulator sim;
  DiskSpec spec;
  spec.read_latency = FromMillis(1);
  spec.write_latency = FromMillis(1);
  spec.seek_penalty = 0;
  spec.bandwidth_bps = 1e12;  // transfer time negligible
  spec.concurrency = 2;
  DiskDevice device(&sim, spec, "d0");
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    IoRequest request;
    request.bytes = 1;
    request.on_complete = [&](SimTime now) { completions.push_back(now); };
    device.Submit(std::move(request));
  }
  EXPECT_EQ(device.QueueDepth(), 4u);
  sim.RunUntilEmpty();
  ASSERT_EQ(completions.size(), 4u);
  // Two waves of two: ~1 ms and ~2 ms.
  EXPECT_EQ(completions[0], completions[1]);
  EXPECT_EQ(completions[2], completions[3]);
  EXPECT_EQ(completions[2], 2 * completions[0]);
}

// Device-reset model on handle-based completions: cancelled in-flight I/O
// leaves the simulator queue eagerly (no dead completion events), callbacks
// never run, and the device keeps working afterwards.
TEST(DiskDeviceTest, CancelAllDropsInflightAndQueuedRequests) {
  Simulator sim;
  DiskSpec spec = DiskSpec::Ssd();
  spec.concurrency = 2;
  DiskDevice device(&sim, spec, "d0");

  int completions = 0;
  for (int i = 0; i < 5; ++i) {  // 2 in flight + 3 queued
    IoRequest request;
    request.bytes = 4096;
    request.on_complete = [&completions](SimTime) { ++completions; };
    device.Submit(std::move(request));
  }
  ASSERT_EQ(device.QueueDepth(), 5u);
  ASSERT_EQ(sim.PendingEvents(), 2u);  // one completion event per in-flight op

  EXPECT_EQ(device.CancelAll(), 5);
  EXPECT_EQ(sim.PendingEvents(), 0u);  // completions left the queue eagerly
  EXPECT_EQ(device.QueueDepth(), 0u);
  // Nothing was served (cancelled at the dispatch instant), so the service
  // time charged up front must be rolled back in full.
  EXPECT_EQ(device.BusyTime(), 0);
  sim.RunUntilEmpty();
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(device.CompletedOps(), 0);

  // The device still serves new work after the reset.
  IoRequest after;
  after.bytes = 4096;
  after.on_complete = [&completions](SimTime) { ++completions; };
  device.Submit(std::move(after));
  sim.RunUntilEmpty();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(device.CompletedOps(), 1);
}

TEST(StripedVolumeTest, CancelAllResetsEveryDrive) {
  Simulator sim;
  StripedVolume volume(&sim, DiskSpec::Hdd(), 4, "hdd");
  int completions = 0;
  for (int i = 0; i < 8; ++i) {
    IoRequest request;
    request.bytes = 4096;
    request.on_complete = [&completions](SimTime) { ++completions; };
    volume.Submit(std::move(request));
  }
  EXPECT_EQ(volume.CancelAll(), 8);
  sim.RunUntilEmpty();
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(volume.TotalQueueDepth(), 0u);
}

TEST(DiskDeviceTest, HddSlowerThanSsdForRandomReads) {
  Simulator sim;
  DiskDevice ssd(&sim, DiskSpec::Ssd(), "ssd");
  DiskDevice hdd(&sim, DiskSpec::Hdd(), "hdd");
  IoRequest random_read{0, IoOp::kRead, 8192, false, nullptr, 0};
  EXPECT_GT(hdd.ServiceTime(random_read), 10 * ssd.ServiceTime(random_read));
}

TEST(StripedVolumeTest, RoundRobinAcrossDrives) {
  Simulator sim;
  DiskSpec spec = DiskSpec::Ssd();
  spec.concurrency = 1;
  StripedVolume volume(&sim, spec, 4, "vol");
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    IoRequest request;
    request.bytes = 4096;
    request.on_complete = [&](SimTime) { ++completed; };
    volume.Submit(std::move(request));
  }
  // All four go to distinct drives, so all complete at the same instant.
  sim.RunUntilEmpty();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(volume.CompletedOps(), 4);
}

TEST(StripedVolumeTest, PerOwnerStats) {
  Simulator sim;
  StripedVolume volume(&sim, DiskSpec::Ssd(), 2, "vol");
  for (int i = 0; i < 6; ++i) {
    IoRequest request;
    request.owner = i % 2 == 0 ? 10 : 20;
    request.bytes = 1024;
    volume.Submit(std::move(request));
  }
  sim.RunUntilEmpty();
  EXPECT_EQ(volume.OwnerStats(10).ops, 3);
  EXPECT_EQ(volume.OwnerStats(20).ops, 3);
  EXPECT_EQ(volume.OwnerStats(10).bytes, 3 * 1024);
  EXPECT_EQ(volume.OwnerStats(99).ops, 0);
  EXPECT_GT(volume.OwnerStats(10).latency_us.Mean(), 0);
}

TEST(StripedVolumeTest, NominalBandwidthScalesWithDrives) {
  Simulator sim;
  StripedVolume volume(&sim, DiskSpec::Hdd(), 4, "vol");
  EXPECT_DOUBLE_EQ(volume.NominalBandwidth(), 4 * DiskSpec::Hdd().bandwidth_bps);
}

}  // namespace
}  // namespace perfiso
